//! Work-stealing dynamic shard search over the shared [`WorkerPool`].
//!
//! The static portfolio ([`super::portfolio`]) races *whole* solvers against
//! each other, which parallelizes nothing when the answer requires visiting
//! the entire tree: an UNSAT proof, a full enumeration count, or the tail of
//! a branch-and-bound run all cost the same wall clock no matter how many
//! redundant racers are running.  [`StealScheduler`] instead splits the
//! search tree itself and keeps every worker busy on a *disjoint* shard:
//!
//! * **Frames.**  A unit of work is a *frame*: the trail of value indices
//!   assigned along the canonical variable order plus a `[lo, hi)` range of
//!   untried values at the next depth — a domain-mask-style shard of a few
//!   hundred bytes.  A steal clones a frame, never a network.
//! * **Deques.**  Each worker owns a deque of donated frames.  A worker
//!   explores depth-first on a private level stack; when the global hungry
//!   counter is nonzero (some peer is idle) and its own deque is empty, it
//!   carves the untried sibling values off the **shallowest** splittable
//!   level of its stack into a fresh frame (a *split*; a *re-split* when the
//!   donor is itself working a stolen frame) and publishes it.
//! * **Steals.**  Idle workers pop their own deque from the back (deepest,
//!   cache-warm) and victims' deques from the front (shallowest, biggest),
//!   so stolen shards are as large as possible and re-split further.
//!
//! # Determinism contract
//!
//! Results are **thread-count-independent** at any worker count:
//!
//! * **SAT races** return the solution with the lowest canonical key — the
//!   vector of value indices along the static search order.  In-frame DFS
//!   runs in ascending key order, and branches whose key prefix exceeds the
//!   best-known key are pruned, so the surviving winner is the global
//!   key-minimum regardless of which worker found what first.
//! * **Branch and bound** prunes strictly below the shared incumbent
//!   (ties are always explored) and breaks weight ties by the lowest
//!   canonical key, so the reported optimum and its cost never depend on
//!   bound-arrival timing.
//! * **UNSAT proofs and enumeration counts** use no cross-frame learning at
//!   all: per-node work is a pure function of the path, frames partition
//!   the tree exactly, and every node is visited exactly once.  Node and
//!   consistency-check totals are therefore *identical* at 1/2/4/8 workers
//!   (the partition audit in the perf gate and tests asserts this), and the
//!   solution count is exact.
//!
//! Search *statistics* of the pruning modes (SAT, BnB) may vary with the
//! schedule — pruning reach depends on when the incumbent improves — but
//! the returned solution, cost and count never do.

use super::pool::WorkerPool;
use super::portfolio::{CancelToken, IncumbentObserver, SharedIncumbent};
use super::{NetworkSearch, SearchLimits, SearchStats, SolveResult};
use crate::assignment::{Assignment, Solution};
use crate::bitset::{BitKernel, KernelEdge, WeightKernel};
use crate::network::{ConstraintNetwork, VarId};
use crate::solver::soft_ac3::{SoftAc3, SoftMark};
use crate::solver::weighted_value_order;
use crate::weighted::{OptimizeResult, WeightedNetwork};
use crate::Value;
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often (in DFS loop iterations) budgets are flushed and polled.
const POLL_EVERY: u32 = 256;

/// How long the collector waits for a worker outcome before helping the
/// pool run queued jobs inline.
const COLLECT_POLL: Duration = Duration::from_micros(200);

/// Steal/split telemetry for one scheduler run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StealReport {
    /// Number of workers the run was sharded over.
    pub workers: usize,
    /// Frames taken from another worker's deque.
    pub steals: u64,
    /// Frames carved off a worker's local stack for idle peers.
    pub splits: u64,
    /// Splits performed while the donor was itself working a stolen frame
    /// (dynamic re-splitting mid-search).
    pub resplits: u64,
    /// Total frames created (the root frame plus every split).
    pub frames: u64,
}

/// A [`StealScheduler::solve_detailed`] outcome: the solve result plus
/// steal telemetry.
#[derive(Debug, Clone)]
pub struct StealSolveReport<V> {
    /// The deterministic solve result (lowest-canonical-key winner).
    pub result: SolveResult<V>,
    /// Steal/split counters for the run.
    pub telemetry: StealReport,
}

/// A [`StealScheduler::count_detailed`] outcome: an exact solution count
/// plus steal telemetry.
#[derive(Debug, Clone)]
pub struct StealCountReport {
    /// Number of solutions counted (exact when the run completed).
    pub solutions: u64,
    /// Search counters (node totals are thread-count-independent).
    pub stats: SearchStats,
    /// Wall-clock time spent counting.
    pub elapsed: Duration,
    /// Whether the count was cut off by the node budget.
    pub hit_node_limit: bool,
    /// Whether the count was cut off by the deadline.
    pub hit_deadline: bool,
    /// Whether the count was aborted by a [`CancelToken`].
    pub cancelled: bool,
    /// Steal/split counters for the run.
    pub telemetry: StealReport,
}

impl StealCountReport {
    /// Whether the count ran to completion and is therefore exact.
    pub fn is_exact(&self) -> bool {
        !self.hit_node_limit && !self.hit_deadline && !self.cancelled
    }
}

/// A [`StealScheduler::optimize_detailed`] outcome: the optimization result
/// plus the canonical weight and steal telemetry.
#[derive(Debug, Clone)]
pub struct StealOptimizeReport<V> {
    /// The deterministic optimization result (strict-< incumbent, weight
    /// ties broken by the lowest canonical key).
    pub result: OptimizeResult<V>,
    /// The canonically recomputed weight of the returned solution.
    pub canonical_weight: Option<f64>,
    /// Whether the run exhausted the search space, proving optimality.
    pub optimal: bool,
    /// Steal/split counters for the run.
    pub telemetry: StealReport,
}

/// What a scheduler run is asked to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeKind {
    /// First solution in canonical key order (or an UNSAT proof).
    Satisfy,
    /// Exact count of all solutions.
    Count,
    /// Maximum-weight solution (branch and bound).
    Optimize,
}

/// A shard of the search tree: assignments along the canonical order for
/// depths `0..trail.len()`, plus the `[lo, hi)` range of untried positions
/// in the static candidate list of the variable at depth `trail.len()`.
#[derive(Debug, Clone)]
struct Frame {
    trail: Vec<usize>,
    lo: usize,
    hi: usize,
    donor: usize,
}

/// One level of a worker's explicit DFS stack: the `[lo, hi)` range of
/// untried candidate positions at `depth`, and the accumulated weight of
/// the assignment prefix (branch and bound only).
struct Level {
    depth: usize,
    lo: usize,
    hi: usize,
    weight: f64,
    /// Propagation journal position taken just before the assignment that
    /// opened this level; popping the level rewinds the [`SoftAc3`] state
    /// to it.  [`SoftMark::ROOT`] when propagation is off.
    mark: SoftMark,
}

/// The best complete assignment found so far (SAT and BnB modes).
struct Best {
    key: Vec<usize>,
    weight: f64,
    assignment: Assignment,
}

/// Immutable per-run context shared by every worker.
struct Space<V: Value> {
    network: ConstraintNetwork<V>,
    weighted: Option<WeightedNetwork<V>>,
    kernel: Arc<BitKernel>,
    weights: Option<Arc<WeightKernel>>,
    order: Vec<VarId>,
    /// Per-depth assigned-prefix edge lists: under the static order the
    /// assigned set at depth `d` is exactly `order[..d]`, so conflict
    /// probes and gained-weight sums walk these `order`-filtered kernel
    /// adjacency lists (same edge order — identical check counts and
    /// bit-identical float sums on every worker).
    earlier: Vec<Vec<KernelEdge>>,
    live: Vec<Vec<usize>>,
    max_pair_weight: Vec<f64>,
    /// Root-propagated weighted bound-consistency template (optimize mode
    /// with propagation enabled).  Each worker clones it and rebuilds the
    /// per-frame state deterministically by replaying the frame trail, so
    /// the propagation reached is a pure function of the path — the node
    /// partition stays exact at every worker count.
    soft: Option<SoftAc3>,
    /// Counters accrued by the one-time root propagation, absorbed exactly
    /// once by the collector (not per worker).
    soft_root_stats: SearchStats,
    mode: ModeKind,
    node_limit: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    workers: usize,
}

/// Mutable coordination state shared by every worker.
struct Shared {
    deques: Vec<Mutex<VecDeque<Frame>>>,
    /// Frames created but not yet fully explored or discarded.  Workers
    /// exit when this reaches zero: no frame is live anywhere, so no new
    /// donation can appear.
    outstanding: AtomicUsize,
    /// Workers currently idle and looking for work.  Nonzero is the signal
    /// that makes busy workers donate.
    hungry: AtomicUsize,
    halt: AtomicBool,
    hit_node_limit: AtomicBool,
    hit_deadline: AtomicBool,
    cancelled: AtomicBool,
    nodes_global: AtomicU64,
    best: Mutex<Option<Best>>,
    best_epoch: AtomicU64,
    incumbent: SharedIncumbent,
    resplits: AtomicU64,
    frames: AtomicU64,
}

impl Shared {
    fn new(workers: usize, observer: Option<IncumbentObserver>) -> Self {
        Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            outstanding: AtomicUsize::new(0),
            hungry: AtomicUsize::new(0),
            halt: AtomicBool::new(false),
            hit_node_limit: AtomicBool::new(false),
            hit_deadline: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            nodes_global: AtomicU64::new(0),
            best: Mutex::new(None),
            best_epoch: AtomicU64::new(0),
            incumbent: SharedIncumbent::maybe_observed(observer),
            resplits: AtomicU64::new(0),
            frames: AtomicU64::new(0),
        }
    }
}

/// Per-worker mutable state.
struct Worker {
    id: usize,
    stats: SearchStats,
    solutions: u64,
    assignment: Assignment,
    /// This worker's clone of the space's root-propagated [`SoftAc3`]
    /// template; always rewound to the committed root baseline between
    /// frames.
    soft: Option<SoftAc3>,
    levels: Vec<Level>,
    exploring_stolen: bool,
    hungry_registered: bool,
    ticks: u32,
    flushed_nodes: u64,
    cached_epoch: u64,
    cached_key: Option<Vec<usize>>,
}

/// What each worker reports back to the collector.
struct WorkerOutcome {
    stats: SearchStats,
    solutions: u64,
}

/// Everything the collector assembles after the last worker reports.
struct RunOutput {
    stats: SearchStats,
    solutions: u64,
    best: Option<Best>,
    hit_node_limit: bool,
    hit_deadline: bool,
    cancelled: bool,
    elapsed: Duration,
    telemetry: StealReport,
}

/// Work-stealing dynamic shard search (see the [module docs](self)).
///
/// Without a pool the scheduler degrades to a single sequential worker —
/// the same algorithm, zero splits — which is also the 1-worker baseline
/// the determinism contract is audited against.
#[derive(Debug, Clone)]
pub struct StealScheduler {
    parallelism: Option<usize>,
    pool: Option<Arc<WorkerPool>>,
    observer: Option<IncumbentObserver>,
    propagation: bool,
}

impl Default for StealScheduler {
    fn default() -> Self {
        StealScheduler {
            parallelism: None,
            pool: None,
            observer: None,
            propagation: true,
        }
    }
}

impl StealScheduler {
    /// A scheduler with no pool (sequential until one is attached).
    pub fn new() -> Self {
        StealScheduler::default()
    }

    /// Enables or disables weighted bound-consistency propagation
    /// ([`SoftAc3`]) in optimize mode (on by default).  The flag trades
    /// nodes for propagation work only: the reported optimum and its
    /// weight are bit-identical either way.  Satisfy and count runs never
    /// propagate, so their exact node partition is unaffected.
    pub fn propagation(mut self, on: bool) -> Self {
        self.propagation = on;
        self
    }

    /// Attaches the shared worker pool the scheduler fans out over.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Sets the worker count (clamped to at least one).  Defaults to the
    /// pool's thread count.  More workers than pool threads is legal: the
    /// caller's thread always runs worker 0, and surplus workers drain
    /// instantly once the tree is exhausted.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Subscribes an observer to the optimize-mode [`SharedIncumbent`]:
    /// every raise of the best-known solution weight across all workers is
    /// reported.  Observation never changes the computed result (solve and
    /// count modes never raise the bound, so the observer stays silent
    /// there).
    pub fn observe_incumbent(mut self, observer: IncumbentObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    fn effective_workers(&self) -> usize {
        match &self.pool {
            Some(pool) => self.parallelism.unwrap_or_else(|| pool.threads()).max(1),
            None => 1,
        }
    }

    /// Searches for the lowest-canonical-key solution, or proves the
    /// network unsatisfiable by exhausting a node-disjoint partition of the
    /// tree across workers.
    pub fn solve<V: Value + Send + Sync + 'static>(
        &self,
        network: &ConstraintNetwork<V>,
        limits: &SearchLimits,
    ) -> SolveResult<V> {
        self.solve_detailed(network, limits, None).result
    }

    /// [`StealScheduler::solve`] with an optional cancel token and steal
    /// telemetry in the report.
    pub fn solve_detailed<V: Value + Send + Sync + 'static>(
        &self,
        network: &ConstraintNetwork<V>,
        limits: &SearchLimits,
        cancel: Option<&CancelToken>,
    ) -> StealSolveReport<V> {
        let workers = self.effective_workers();
        match self.prepare(network, None, ModeKind::Satisfy, limits, cancel, workers) {
            Prepared::Trivial(solvable) => {
                let solution = solvable.then(|| {
                    Solution::from_assignment(network, &Assignment::new(network.variable_count()))
                });
                StealSolveReport {
                    result: SolveResult {
                        solution,
                        stats: SearchStats::default(),
                        elapsed: Duration::ZERO,
                        hit_node_limit: false,
                        hit_deadline: false,
                        cancelled: false,
                    },
                    telemetry: StealReport {
                        workers,
                        ..StealReport::default()
                    },
                }
            }
            Prepared::Space(space) => {
                let out = self.run(*space);
                let solution = out
                    .best
                    .as_ref()
                    .map(|b| Solution::from_assignment(network, &b.assignment));
                StealSolveReport {
                    result: SolveResult {
                        solution,
                        stats: out.stats,
                        elapsed: out.elapsed,
                        hit_node_limit: out.hit_node_limit,
                        hit_deadline: out.hit_deadline,
                        cancelled: out.cancelled,
                    },
                    telemetry: out.telemetry,
                }
            }
        }
    }

    /// Counts every solution of the network exactly, sharding the
    /// enumeration tree across workers.
    pub fn count<V: Value + Send + Sync + 'static>(
        &self,
        network: &ConstraintNetwork<V>,
        limits: &SearchLimits,
    ) -> StealCountReport {
        self.count_detailed(network, limits, None)
    }

    /// [`StealScheduler::count`] with an optional cancel token.
    pub fn count_detailed<V: Value + Send + Sync + 'static>(
        &self,
        network: &ConstraintNetwork<V>,
        limits: &SearchLimits,
        cancel: Option<&CancelToken>,
    ) -> StealCountReport {
        let workers = self.effective_workers();
        match self.prepare(network, None, ModeKind::Count, limits, cancel, workers) {
            Prepared::Trivial(solvable) => StealCountReport {
                solutions: u64::from(solvable),
                stats: SearchStats::default(),
                elapsed: Duration::ZERO,
                hit_node_limit: false,
                hit_deadline: false,
                cancelled: false,
                telemetry: StealReport {
                    workers,
                    ..StealReport::default()
                },
            },
            Prepared::Space(space) => {
                let out = self.run(*space);
                StealCountReport {
                    solutions: out.solutions,
                    stats: out.stats,
                    elapsed: out.elapsed,
                    hit_node_limit: out.hit_node_limit,
                    hit_deadline: out.hit_deadline,
                    cancelled: out.cancelled,
                    telemetry: out.telemetry,
                }
            }
        }
    }

    /// Finds the maximum-weight solution by sharded branch and bound with a
    /// shared incumbent (strict-< pruning, key tie-break).
    pub fn optimize<V: Value + Send + Sync + 'static>(
        &self,
        weighted: &WeightedNetwork<V>,
        limits: &SearchLimits,
    ) -> OptimizeResult<V> {
        self.optimize_detailed(weighted, limits, None).result
    }

    /// [`StealScheduler::optimize`] with an optional cancel token, the
    /// canonical weight and steal telemetry in the report.
    pub fn optimize_detailed<V: Value + Send + Sync + 'static>(
        &self,
        weighted: &WeightedNetwork<V>,
        limits: &SearchLimits,
        cancel: Option<&CancelToken>,
    ) -> StealOptimizeReport<V> {
        let workers = self.effective_workers();
        let network = weighted.network();
        match self.prepare(
            network,
            Some(weighted),
            ModeKind::Optimize,
            limits,
            cancel,
            workers,
        ) {
            Prepared::Trivial(solvable) => {
                let solution = solvable.then(|| {
                    Solution::from_assignment(network, &Assignment::new(network.variable_count()))
                });
                let optimal = solution.is_some();
                StealOptimizeReport {
                    canonical_weight: solution.as_ref().map(|_| 0.0),
                    result: OptimizeResult {
                        solution,
                        best_weight: 0.0,
                        stats: SearchStats::default(),
                        elapsed: Duration::ZERO,
                        hit_node_limit: false,
                        hit_deadline: false,
                        cancelled: false,
                    },
                    optimal,
                    telemetry: StealReport {
                        workers,
                        ..StealReport::default()
                    },
                }
            }
            Prepared::Space(space) => {
                let out = self.run(*space);
                let solution = out
                    .best
                    .as_ref()
                    .map(|b| Solution::from_assignment(network, &b.assignment));
                let canonical_weight = out.best.as_ref().map(|b| b.weight);
                let exhausted = !out.hit_node_limit && !out.hit_deadline && !out.cancelled;
                StealOptimizeReport {
                    optimal: exhausted && solution.is_some(),
                    result: OptimizeResult {
                        solution,
                        best_weight: canonical_weight.unwrap_or(0.0),
                        stats: out.stats,
                        elapsed: out.elapsed,
                        hit_node_limit: out.hit_node_limit,
                        hit_deadline: out.hit_deadline,
                        cancelled: out.cancelled,
                    },
                    canonical_weight,
                    telemetry: out.telemetry,
                }
            }
        }
    }

    /// Builds the shared search space, or short-circuits trivial networks
    /// (no variables: trivially solvable; an empty live domain: trivially
    /// unsatisfiable).
    fn prepare<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        weighted: Option<&WeightedNetwork<V>>,
        mode: ModeKind,
        limits: &SearchLimits,
        cancel: Option<&CancelToken>,
        workers: usize,
    ) -> Prepared<V> {
        if network.variable_count() == 0 {
            return Prepared::Trivial(true);
        }
        let mut order: Vec<VarId> = network.variables().collect();
        let kernel = Arc::clone(network.kernel());
        let mut soft_root_stats = SearchStats::default();
        let (weights, live, max_pair_weight, soft) = match (mode, weighted) {
            (ModeKind::Optimize, Some(weighted)) => {
                // Branch and bound: most-constrained-first order, values by
                // descending weight potential, per-constraint optimistic
                // bounds — the exact machinery of `BranchAndBound`, so the
                // 1-worker scheduler explores the same tree shape.
                order.sort_by_key(|&v| Reverse(network.constraints_of(v).len()));
                let weight_kernel = Arc::clone(weighted.weight_kernel());
                let domains = kernel.masked_domains(network.mask().map(|m| &**m));
                let live: Vec<Vec<usize>> = network
                    .variables()
                    .map(|v| weighted_value_order(&kernel, &weight_kernel, &domains, v))
                    .collect();
                let floor = weighted.default_weight().max(0.0);
                let max_pair_weight: Vec<f64> = (0..network.constraint_count())
                    .map(|ci| {
                        let bit = kernel.constraint(ci);
                        let masked = network
                            .mask()
                            .is_some_and(|m| m.is_masked(bit.first()) || m.is_masked(bit.second()));
                        let best = if masked {
                            let mut best = f64::NEG_INFINITY;
                            let wc = weight_kernel.constraint(ci);
                            domains.for_each_live(bit.first(), |a| {
                                domains.for_each_common(bit.second(), bit.row(true, a), |b| {
                                    best = best.max(wc.get(a, b));
                                });
                            });
                            best
                        } else {
                            weight_kernel.constraint(ci).max_allowed()
                        };
                        if best.is_finite() {
                            floor.max(best)
                        } else {
                            floor
                        }
                    })
                    .collect();
                // Root-propagated bound-consistency template: built once,
                // cloned per worker.  A root wipeout means no assignment
                // can strictly beat negative infinity — i.e. every value
                // of some variable is hard-unsupported — so the network
                // is trivially unsatisfiable.
                let soft = if self.propagation {
                    let mut soft =
                        SoftAc3::new(&kernel, &weight_kernel, network.mask().map(|m| &**m));
                    if soft.root_propagate(&mut soft_root_stats).is_err() {
                        return Prepared::Trivial(false);
                    }
                    soft.commit();
                    Some(soft)
                } else {
                    None
                };
                (Some(weight_kernel), live, max_pair_weight, soft)
            }
            _ => {
                // Satisfy/count: the enumerator's static most-constrained-
                // first order with ascending value indices, so the canonical
                // key order coincides with the in-frame DFS order.
                order.sort_by_key(|&v| {
                    (
                        Reverse(network.neighbours(v).len()),
                        network.live_count(v),
                        v,
                    )
                });
                let live: Vec<Vec<usize>> = network
                    .variables()
                    .map(|v| network.live_values(v))
                    .collect();
                (None, live, Vec::new(), None)
            }
        };
        if live.iter().any(|values| values.is_empty()) {
            return Prepared::Trivial(false);
        }
        let mut position = vec![0usize; network.variable_count()];
        for (d, &v) in order.iter().enumerate() {
            position[v.index()] = d;
        }
        let earlier: Vec<Vec<KernelEdge>> = order
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                kernel
                    .edges(v)
                    .iter()
                    .filter(|e| position[e.other.index()] < d)
                    .copied()
                    .collect()
            })
            .collect();
        Prepared::Space(Box::new(Space {
            network: network.clone(),
            weighted: weighted.cloned(),
            kernel,
            weights,
            order,
            earlier,
            live,
            max_pair_weight,
            soft,
            soft_root_stats,
            mode,
            node_limit: limits.node_limit,
            deadline: limits.deadline,
            cancel: cancel.cloned(),
            workers,
        }))
    }

    /// Seeds the root frame, fans workers out over the pool (the calling
    /// thread is always worker 0) and collects per-worker outcomes.
    fn run<V: Value + Send + Sync + 'static>(&self, space: Space<V>) -> RunOutput {
        let start = Instant::now();
        let workers = space.workers;
        let shared = Arc::new(Shared::new(workers, self.observer.clone()));
        if let Some(cancel) = &space.cancel {
            if cancel.is_cancelled() {
                shared.cancelled.store(true, Ordering::Release);
                shared.halt.store(true, Ordering::Release);
            }
        }
        if let Some(deadline) = space.deadline {
            if Instant::now() >= deadline {
                shared.hit_deadline.store(true, Ordering::Release);
                shared.halt.store(true, Ordering::Release);
            }
        }
        let root_var = space.order[0];
        shared.outstanding.store(1, Ordering::SeqCst);
        shared.frames.store(1, Ordering::Relaxed);
        crate::sync::lock_or_recover(&shared.deques[0]).push_back(Frame {
            trail: Vec::new(),
            lo: 0,
            hi: space.live[root_var.index()].len(),
            donor: 0,
        });

        let space = Arc::new(space);
        let (tx, rx) = channel::<WorkerOutcome>();
        let mut in_flight = 0usize;
        if workers > 1 {
            let pool = self
                .pool
                .as_ref()
                .expect("multi-worker scheduling requires a pool");
            for id in 1..workers {
                let space = Arc::clone(&space);
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                pool.execute(move || {
                    let outcome = worker_run(&space, &shared, id);
                    let _ = tx.send(outcome);
                });
                in_flight += 1;
            }
        }
        drop(tx);

        let own = worker_run(&space, &shared, 0);
        let mut stats = own.stats;
        // The one-time root propagation belongs to the run, not to any
        // worker: absorb its counters exactly once.
        stats.absorb(&space.soft_root_stats);
        let mut solutions = own.solutions;
        while in_flight > 0 {
            match rx.recv_timeout(COLLECT_POLL) {
                Ok(outcome) => {
                    // Each worker's counters cover exactly the frames it
                    // explored; frames are disjoint, so one absorb per
                    // worker attributes every node exactly once.
                    stats.absorb(&outcome.stats);
                    solutions += outcome.solutions;
                    in_flight -= 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(pool) = &self.pool {
                        pool.help_run_one();
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        let best = crate::sync::lock_or_recover(&shared.best).take();
        RunOutput {
            telemetry: StealReport {
                workers,
                steals: stats.steals,
                splits: stats.splits,
                resplits: shared.resplits.load(Ordering::Relaxed),
                frames: shared.frames.load(Ordering::Relaxed),
            },
            stats,
            solutions,
            best,
            hit_node_limit: shared.hit_node_limit.load(Ordering::Acquire),
            hit_deadline: shared.hit_deadline.load(Ordering::Acquire),
            cancelled: shared.cancelled.load(Ordering::Acquire),
            elapsed: start.elapsed(),
        }
    }
}

impl<V: Value + Send + Sync + 'static> NetworkSearch<V> for StealScheduler {
    /// The scheduler is deterministic by construction, so the caller's RNG
    /// is unused.
    fn search(
        &self,
        network: &ConstraintNetwork<V>,
        _rng: &mut StdRng,
        limits: &SearchLimits,
    ) -> SolveResult<V> {
        self.solve(network, limits)
    }
}

enum Prepared<V: Value> {
    /// `true`: trivially solvable (no variables); `false`: trivially
    /// unsatisfiable (an empty live domain).
    Trivial(bool),
    /// Boxed: a prepared space carries the order, per-depth edge lists and
    /// live masks, which dwarf the trivial arm.
    Space(Box<Space<V>>),
}

/// The main worker loop: explore frames until no frame is live anywhere.
fn worker_run<V: Value>(space: &Space<V>, shared: &Shared, id: usize) -> WorkerOutcome {
    crate::fail_point!("steal.worker");
    let mut w = Worker {
        id,
        stats: SearchStats::default(),
        solutions: 0,
        assignment: Assignment::new(space.network.variable_count()),
        soft: space.soft.clone(),
        levels: Vec::new(),
        exploring_stolen: false,
        hungry_registered: false,
        ticks: 0,
        flushed_nodes: 0,
        cached_epoch: 0,
        cached_key: None,
    };
    loop {
        match take_frame(space, shared, &mut w) {
            Some(frame) => {
                explore(space, shared, &mut w, frame);
                shared.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if !w.hungry_registered {
                    shared.hungry.fetch_add(1, Ordering::SeqCst);
                    w.hungry_registered = true;
                }
                if shared.outstanding.load(Ordering::SeqCst) == 0 {
                    break;
                }
                // Keep external aborts responsive even while starved.
                poll_budget(space, shared, &mut w);
                std::thread::yield_now();
            }
        }
    }
    if w.hungry_registered {
        shared.hungry.fetch_sub(1, Ordering::SeqCst);
    }
    WorkerOutcome {
        stats: w.stats,
        solutions: w.solutions,
    }
}

/// Pops the next frame: own deque from the back (deepest, cache-warm),
/// then victims' deques from the front (shallowest shard = biggest steal).
fn take_frame<V: Value>(space: &Space<V>, shared: &Shared, w: &mut Worker) -> Option<Frame> {
    let mut frame = crate::sync::lock_or_recover(&shared.deques[w.id]).pop_back();
    if frame.is_none() {
        for k in 1..space.workers {
            let victim = (w.id + k) % space.workers;
            // A poisoned victim deque still holds frames that must drain
            // (losing them would wedge the outstanding counter), so recover
            // the guard instead of skipping the victim.
            let stolen = match shared.deques[victim].try_lock() {
                Ok(mut deque) => deque.pop_front(),
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    poisoned.into_inner().pop_front()
                }
                Err(std::sync::TryLockError::WouldBlock) => None,
            };
            if let Some(stolen) = stolen {
                frame = Some(stolen);
                break;
            }
        }
    }
    let frame = frame?;
    if frame.donor != w.id {
        w.stats.steals += 1;
    }
    if w.hungry_registered {
        shared.hungry.fetch_sub(1, Ordering::SeqCst);
        w.hungry_registered = false;
    }
    Some(frame)
}

/// Replays a frame's trail and runs the in-frame DFS over its shard.
fn explore<V: Value>(space: &Space<V>, shared: &Shared, w: &mut Worker, frame: Frame) {
    // A halted run discards frames unexplored; the pop-discard loop in
    // `worker_run` is what drains every deque promptly on cancellation.
    if shared.halt.load(Ordering::Acquire) {
        return;
    }
    w.exploring_stolen = frame.donor != w.id;
    let base = frame.trail.len();
    let mut weight = 0.0;
    let mut soft_wipeout = false;
    for (depth, &value) in frame.trail.iter().enumerate() {
        let var = space.order[depth];
        if space.mode == ModeKind::Optimize {
            // Same edge-order summation as the original path, so the replayed
            // prefix weight is bit-identical to the donor's.
            weight += gained(space, &w.assignment, depth, value);
        }
        w.assignment.assign(var, value);
        // Rebuild the propagation state from the trail: the forward-checked
        // domains after the replay are a pure function of the path (the
        // donor's own state was at least as tight, so a wipeout here is a
        // defensive impossibility — handled as a pruned frame regardless).
        if !soft_wipeout {
            if let Some(soft) = w.soft.as_mut() {
                if soft.assign(var, value).is_err() {
                    soft_wipeout = true;
                }
            }
        }
    }
    let mut pruned = false;
    if space.mode == ModeKind::Optimize {
        if let Some(soft) = w.soft.as_mut() {
            // One fixpoint over the replayed prefix stands in for the
            // frame-level optimistic prune: strictly below the shared
            // incumbent is dead, ties survive (no local best in the
            // sharded search — the incumbent carries all pruning).
            if soft_wipeout
                || soft
                    .propagate(
                        weight,
                        f64::NEG_INFINITY,
                        shared.incumbent.get(),
                        &mut w.stats,
                    )
                    .is_err()
            {
                w.stats.prunings += 1;
                pruned = true;
            }
        } else {
            let optimistic = optimistic_bound(space, &w.assignment);
            if weight + optimistic < shared.incumbent.get() {
                w.stats.prunings += 1;
                pruned = true;
            }
        }
    }
    if !pruned {
        w.levels.clear();
        w.levels.push(Level {
            depth: base,
            lo: frame.lo,
            hi: frame.hi,
            weight,
            mark: SoftMark::ROOT,
        });
        dfs(space, shared, w, base);
    }
    for depth in (0..base).rev() {
        w.assignment.unassign(space.order[depth]);
    }
    // Rewind every journaled change (trail replay, fixpoint deletions and
    // in-frame leftovers) back to the committed root baseline.
    if let Some(soft) = w.soft.as_mut() {
        soft.undo_all();
    }
}

/// Depth-first exploration of the worker's level stack, donating shards to
/// hungry peers along the way.
fn dfs<V: Value>(space: &Space<V>, shared: &Shared, w: &mut Worker, base: usize) {
    let depth_count = space.order.len();
    while !w.levels.is_empty() {
        w.ticks += 1;
        if w.ticks >= POLL_EVERY {
            poll_budget(space, shared, w);
        }
        if shared.halt.load(Ordering::Relaxed) {
            while let Some(level) = w.levels.pop() {
                if level.depth > base {
                    w.assignment.unassign(space.order[level.depth - 1]);
                    if let Some(soft) = w.soft.as_mut() {
                        soft.undo_to(level.mark);
                    }
                }
            }
            return;
        }
        maybe_donate(space, shared, w);
        let top = w.levels.last_mut().expect("level stack is non-empty");
        let depth = top.depth;
        let level_weight = top.weight;
        let var = space.order[depth];
        if top.lo == top.hi {
            let level = w.levels.pop().expect("level stack is non-empty");
            if depth > base {
                w.assignment.unassign(space.order[depth - 1]);
                if let Some(soft) = w.soft.as_mut() {
                    soft.undo_to(level.mark);
                }
            }
            w.stats.backtracks += 1;
            continue;
        }
        let value = space.live[var.index()][top.lo];
        top.lo += 1;
        // Values the bound-consistency fixpoint already deleted are not
        // search nodes: skip before the node counter, exactly like the
        // sequential `BranchAndBound`.
        if let Some(soft) = &w.soft {
            if !soft.is_live(var, value) {
                continue;
            }
        }
        w.stats.nodes_visited += 1;
        if depth + 1 > w.stats.max_depth {
            w.stats.max_depth = depth + 1;
        }
        if space.mode == ModeKind::Satisfy && beaten_by_best(space, shared, w, depth, value) {
            // In-frame DFS runs in ascending key order: once one value's key
            // prefix exceeds the best-known key, so does every later
            // sibling's — the rest of the level is dead.
            let top = w.levels.last_mut().expect("level stack is non-empty");
            top.lo = top.hi;
            continue;
        }
        // Inline `conflicts_any` over the assigned-prefix edge list: one
        // check per probed edge, early exit on the first conflict — the
        // same probe order and check counts on every worker.  Redundant
        // when propagation is on: every live value has been forward-checked
        // against the whole assigned prefix.
        if w.soft.is_none() {
            let mut conflict = false;
            for edge in &space.earlier[depth] {
                if let Some(other_value) = w.assignment.get(edge.other) {
                    w.stats.consistency_checks += 1;
                    let c = space.kernel.constraint(edge.constraint);
                    let allowed = if edge.var_is_first {
                        c.allows(value, other_value)
                    } else {
                        c.allows(other_value, value)
                    };
                    if !allowed {
                        conflict = true;
                        break;
                    }
                }
            }
            if conflict {
                continue;
            }
        }
        if depth + 1 == depth_count {
            w.assignment.assign(var, value);
            on_complete(space, shared, w);
            w.assignment.unassign(var);
            continue;
        }
        let gained_here = if space.mode == ModeKind::Optimize {
            gained(space, &w.assignment, depth, value)
        } else {
            0.0
        };
        w.assignment.assign(var, value);
        let mut child_mark = SoftMark::ROOT;
        if space.mode == ModeKind::Optimize {
            if let Some(soft) = w.soft.as_mut() {
                // Propagate-then-branch: forward-check the assignment and
                // run the bound-consistency fixpoint against the shared
                // incumbent (strict <, ties explored — the same contract
                // as the optimistic prune it replaces).
                let mark = soft.mark();
                let ok = soft.assign(var, value).is_ok()
                    && soft
                        .propagate(
                            level_weight + gained_here,
                            f64::NEG_INFINITY,
                            shared.incumbent.get(),
                            &mut w.stats,
                        )
                        .is_ok();
                if !ok {
                    w.stats.prunings += 1;
                    soft.undo_to(mark);
                    w.assignment.unassign(var);
                    continue;
                }
                child_mark = mark;
            } else {
                let optimistic = optimistic_bound(space, &w.assignment);
                // Strictly below the shared incumbent: nothing reportable
                // lives here.  Ties must be explored — that is what keeps
                // the final solution independent of bound-arrival timing.
                if level_weight + gained_here + optimistic < shared.incumbent.get() {
                    w.stats.prunings += 1;
                    w.assignment.unassign(var);
                    continue;
                }
            }
        }
        let next_var = space.order[depth + 1];
        w.levels.push(Level {
            depth: depth + 1,
            lo: 0,
            hi: space.live[next_var.index()].len(),
            weight: level_weight + gained_here,
            mark: child_mark,
        });
    }
}

/// Donates the tail half of the shallowest splittable level to this
/// worker's deque when some peer is hungry and the deque is empty.
fn maybe_donate<V: Value>(space: &Space<V>, shared: &Shared, w: &mut Worker) {
    if shared.hungry.load(Ordering::Relaxed) == 0 || shared.halt.load(Ordering::Relaxed) {
        return;
    }
    let Some(index) = w.levels.iter().position(|level| level.hi - level.lo >= 2) else {
        return;
    };
    // An undrained previous donation means no thief has caught up yet;
    // donating more would just fragment the tree.
    let Ok(mut deque) = shared.deques[w.id].try_lock() else {
        return;
    };
    if !deque.is_empty() {
        return;
    }
    let level = &mut w.levels[index];
    let mid = level.lo + (level.hi - level.lo).div_ceil(2);
    let trail: Vec<usize> = (0..level.depth)
        .map(|depth| {
            w.assignment
                .get(space.order[depth])
                .expect("trail prefix is assigned")
        })
        .collect();
    let frame = Frame {
        trail,
        lo: mid,
        hi: level.hi,
        donor: w.id,
    };
    level.hi = mid;
    shared.outstanding.fetch_add(1, Ordering::SeqCst);
    shared.frames.fetch_add(1, Ordering::Relaxed);
    deque.push_back(frame);
    drop(deque);
    w.stats.splits += 1;
    if w.exploring_stolen {
        shared.resplits.fetch_add(1, Ordering::Relaxed);
    }
}

/// Flushes locally counted nodes into the global budget and checks the
/// node limit, the deadline and the cancel token.
fn poll_budget<V: Value>(space: &Space<V>, shared: &Shared, w: &mut Worker) {
    w.ticks = 0;
    let delta = w.stats.nodes_visited - w.flushed_nodes;
    w.flushed_nodes = w.stats.nodes_visited;
    let total = shared.nodes_global.fetch_add(delta, Ordering::Relaxed) + delta;
    if let Some(limit) = space.node_limit {
        if total >= limit {
            shared.hit_node_limit.store(true, Ordering::Release);
            shared.halt.store(true, Ordering::Release);
        }
    }
    if let Some(deadline) = space.deadline {
        if Instant::now() >= deadline {
            shared.hit_deadline.store(true, Ordering::Release);
            shared.halt.store(true, Ordering::Release);
        }
    }
    if let Some(cancel) = &space.cancel {
        if cancel.is_cancelled() {
            shared.cancelled.store(true, Ordering::Release);
            shared.halt.store(true, Ordering::Release);
        }
    }
}

/// Whether the key prefix `assignment[order[0..depth]] + value` already
/// exceeds the best-known solution key (SAT mode pruning).
fn beaten_by_best<V: Value>(
    space: &Space<V>,
    shared: &Shared,
    w: &mut Worker,
    depth: usize,
    value: usize,
) -> bool {
    let epoch = shared.best_epoch.load(Ordering::Acquire);
    if epoch != w.cached_epoch {
        w.cached_epoch = epoch;
        w.cached_key = crate::sync::lock_or_recover(&shared.best)
            .as_ref()
            .map(|best| best.key.clone());
    }
    let Some(best) = &w.cached_key else {
        return false;
    };
    for (d, &best_at) in best.iter().enumerate().take(depth) {
        let mine = w
            .assignment
            .get(space.order[d])
            .expect("DFS prefix is assigned");
        if best_at < mine {
            return true;
        }
        if best_at > mine {
            return false;
        }
    }
    // Equal prefixes must still be explored: deeper positions may be
    // smaller than the best key's.
    best[depth] < value
}

/// Handles a complete consistent assignment according to the run mode.
fn on_complete<V: Value>(space: &Space<V>, shared: &Shared, w: &mut Worker) {
    match space.mode {
        ModeKind::Count => w.solutions += 1,
        ModeKind::Satisfy => {
            let key = key_of(space, &w.assignment);
            let mut best = crate::sync::lock_or_recover(&shared.best);
            let replace = match best.as_ref() {
                None => true,
                Some(current) => key < current.key,
            };
            if replace {
                *best = Some(Best {
                    key,
                    weight: 0.0,
                    assignment: w.assignment.clone(),
                });
                shared.best_epoch.fetch_add(1, Ordering::Release);
            }
        }
        ModeKind::Optimize => {
            let weighted = space.weighted.as_ref().expect("optimize mode has weights");
            // Publish the *canonically* recomputed weight: every worker sums
            // constraint contributions in the same (variable, adjacency)
            // order, so equal solutions compare bit-equal everywhere.
            let canonical = weighted.assignment_weight(&w.assignment);
            if canonical < shared.incumbent.get() {
                return; // strictly worse than the incumbent: not even a tie
            }
            let key = key_of(space, &w.assignment);
            let mut best = crate::sync::lock_or_recover(&shared.best);
            let replace = match best.as_ref() {
                None => true,
                Some(current) => {
                    canonical > current.weight || (canonical == current.weight && key < current.key)
                }
            };
            if replace {
                *best = Some(Best {
                    key,
                    weight: canonical,
                    assignment: w.assignment.clone(),
                });
                shared.incumbent.offer(canonical);
                shared.best_epoch.fetch_add(1, Ordering::Release);
            }
        }
    }
}

/// The canonical key of a complete assignment: value indices along the
/// static search order.
fn key_of<V: Value>(space: &Space<V>, assignment: &Assignment) -> Vec<usize> {
    space
        .order
        .iter()
        .map(|&var| assignment.get(var).expect("assignment is complete"))
        .collect()
}

/// Weight gained by assigning `value` to `order[depth]` against the
/// already-assigned prefix (the filtered list preserves kernel-adjacency
/// order: deterministic float sums, bit-identical on every worker).
fn gained<V: Value>(space: &Space<V>, assignment: &Assignment, depth: usize, value: usize) -> f64 {
    let weights = space.weights.as_ref().expect("optimize mode has weights");
    let mut total = 0.0;
    for edge in &space.earlier[depth] {
        if let Some(other_value) = assignment.get(edge.other) {
            total +=
                weights
                    .constraint(edge.constraint)
                    .oriented(edge.var_is_first, value, other_value);
        }
    }
    total
}

/// Upper bound on the weight still obtainable: the sum of per-constraint
/// optimistic bounds over constraints not yet fully assigned.
fn optimistic_bound<V: Value>(space: &Space<V>, assignment: &Assignment) -> f64 {
    space
        .max_pair_weight
        .iter()
        .enumerate()
        .filter(|&(ci, _)| {
            let c = space.kernel.constraint(ci);
            assignment.get(c.first()).is_none() || assignment.get(c.second()).is_none()
        })
        .map(|(_, &bound)| bound)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomNetworkSpec;
    use crate::solver::{Enumerator, SearchEngine};
    use crate::weighted::BranchAndBound;

    fn pool(threads: usize) -> Arc<WorkerPool> {
        Arc::new(WorkerPool::new(threads))
    }

    fn loose_network(seed: u64) -> ConstraintNetwork<usize> {
        RandomNetworkSpec {
            variables: 10,
            domain_size: 3,
            density: 0.3,
            tightness: 0.2,
            seed,
        }
        .generate()
    }

    fn unsat_triangle() -> ConstraintNetwork<usize> {
        let mut net = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![0, 1]);
        let neq = vec![(0, 1), (1, 0)];
        net.add_constraint(a, b, neq.clone()).unwrap();
        net.add_constraint(b, c, neq.clone()).unwrap();
        net.add_constraint(a, c, neq).unwrap();
        net
    }

    #[test]
    fn empty_network_is_trivially_solvable() {
        let net: ConstraintNetwork<usize> = ConstraintNetwork::new();
        let report = StealScheduler::new().solve_detailed(&net, &SearchLimits::none(), None);
        assert!(report.result.solution.is_some());
        let count = StealScheduler::new().count(&net, &SearchLimits::none());
        assert_eq!(count.solutions, 1);
    }

    #[test]
    fn proves_unsatisfiability_sequentially_and_in_parallel() {
        let net = unsat_triangle();
        let sequential = StealScheduler::new().solve(&net, &SearchLimits::none());
        assert!(sequential.proves_unsatisfiable());
        let parallel = StealScheduler::new()
            .with_pool(pool(4))
            .parallelism(4)
            .solve(&net, &SearchLimits::none());
        assert!(parallel.proves_unsatisfiable());
        assert_eq!(
            sequential.stats.nodes_visited, parallel.stats.nodes_visited,
            "UNSAT proofs partition the tree exactly"
        );
    }

    #[test]
    fn count_matches_enumerator() {
        let net = loose_network(41);
        let reference = Enumerator::default().enumerate(&net);
        assert!(!reference.truncated);
        for workers in [1usize, 4] {
            let scheduler = if workers == 1 {
                StealScheduler::new()
            } else {
                StealScheduler::new()
                    .with_pool(pool(workers))
                    .parallelism(workers)
            };
            let count = scheduler.count(&net, &SearchLimits::none());
            assert!(count.is_exact());
            assert_eq!(count.solutions, reference.count() as u64);
        }
    }

    #[test]
    fn solve_agrees_with_engine_on_satisfiability() {
        for seed in [7u64, 8, 9] {
            let net = loose_network(seed);
            let engine = SearchEngine::default().solve(&net);
            let steal = StealScheduler::new().solve(&net, &SearchLimits::none());
            assert_eq!(
                engine.is_satisfiable(),
                steal.is_satisfiable(),
                "seed {seed}"
            );
            if let Some(solution) = &steal.solution {
                for var in net.variables() {
                    assert!(net.is_live(var, solution.value_index(var)));
                }
            }
        }
    }

    #[test]
    fn optimize_matches_branch_and_bound_weight() {
        let (weighted, _) = crate::random::planted_weighted_network(
            &RandomNetworkSpec {
                variables: 9,
                domain_size: 3,
                density: 0.5,
                tightness: 0.2,
                seed: 99,
            },
            25.0,
            6,
        );
        let reference = BranchAndBound::new().optimize(&weighted);
        for workers in [1usize, 4] {
            let scheduler = if workers == 1 {
                StealScheduler::new()
            } else {
                StealScheduler::new()
                    .with_pool(pool(workers))
                    .parallelism(workers)
            };
            let report = scheduler.optimize_detailed(&weighted, &SearchLimits::none(), None);
            assert!(report.optimal);
            assert_eq!(report.result.best_weight, reference.best_weight);
        }
    }

    #[test]
    fn node_limit_halts_the_run() {
        // PHP(8)'s refutation tree is far larger than 500 nodes, so the
        // budget must cut the proof short (within poll granularity).
        let net = crate::random::pigeonhole_network(8);
        let limits = SearchLimits::none().with_node_limit(500);
        let result = StealScheduler::new().solve(&net, &limits);
        assert!(result.hit_node_limit);
        assert!(result.solution.is_none());
        assert!(!result.proves_unsatisfiable());
    }

    #[test]
    fn pre_cancelled_token_aborts_immediately() {
        let net = loose_network(3);
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = StealScheduler::new()
            .with_pool(pool(2))
            .parallelism(2)
            .solve_detailed(&net, &SearchLimits::none(), Some(&cancel));
        assert!(report.result.cancelled);
        assert!(!report.result.proves_unsatisfiable());
    }

    #[test]
    fn sequential_runs_never_steal_or_split() {
        let net = loose_network(11);
        let report = StealScheduler::new().solve_detailed(&net, &SearchLimits::none(), None);
        assert_eq!(report.telemetry.steals, 0);
        assert_eq!(report.telemetry.splits, 0);
        assert_eq!(report.telemetry.workers, 1);
        assert_eq!(report.telemetry.frames, 1);
    }
}
