//! A small, self-contained worker-thread pool (std::thread + channels).
//!
//! The portfolio solver and `mlo-core`'s batch machinery both need to fan
//! work out over threads without pulling in an external executor (the
//! vendored dependency set is fixed).  [`WorkerPool`] is the shared
//! substrate: a fixed set of worker threads draining one injector channel of
//! boxed jobs.
//!
//! Three properties matter for the callers in this workspace:
//!
//! * **Nested submission must not deadlock.**  A batch job running *on* a
//!   pool worker may itself submit portfolio-member jobs to the same pool
//!   and block on their results.  Blocking callers therefore help out: while
//!   waiting they call [`WorkerPool::help_run_one`], which pops and runs a
//!   pending job inline instead of sleeping, so the queue always drains even
//!   when every worker is parked on a nested wait.
//! * **Panics are contained *and observable*.**  A panicking job must not
//!   kill its worker (that would permanently shrink the pool) — but it also
//!   must not vanish silently, leaving whoever waits on the job's result
//!   blocked forever.  Jobs submitted via [`WorkerPool::execute_observed`]
//!   carry an `on_panic` observer that receives the captured payload and the
//!   triggering failpoint as a typed [`JobPanic`], so the submitter can
//!   publish a failure result instead of hanging.
//! * **Shutdown joins.**  Dropping the pool closes the injector and joins
//!   every worker, so tests can assert that no threads leak.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, TryLockError};
use std::thread::JoinHandle;

use crate::sync::lock_or_recover;

/// What the pool captured from a job that panicked.
///
/// Delivered to the `on_panic` observer of
/// [`WorkerPool::execute_observed`]; plain [`WorkerPool::execute`] jobs are
/// still contained but report to nobody.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload rendered as text (`&str`/`String` payloads
    /// verbatim).
    pub message: String,
    /// The failpoint whose trigger caused the panic, when fault injection
    /// was responsible (see [`crate::fault`]).
    pub failpoint: Option<String>,
}

/// A unit of work executed by the pool: the job body plus an optional
/// panic observer.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    on_panic: Option<Box<dyn FnOnce(JobPanic) + Send + 'static>>,
}

/// Runs one job with panic containment, routing any captured panic to the
/// job's observer.  Shared by the worker loop and [`WorkerPool::help_run_one`]
/// so both execution paths have identical failure semantics.
fn run_job(job: Job) {
    let Job { run, on_panic } = job;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::fail_point!("pool.job");
        run();
    }));
    if let Err(payload) = outcome {
        let panic = JobPanic {
            message: crate::fault::panic_message(&*payload),
            failpoint: crate::fault::take_last_triggered(),
        };
        if let Some(observer) = on_panic {
            // The observer runs on the worker too, so it gets the same
            // containment: a buggy observer must not shrink the pool.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| observer(panic)));
        }
    }
}

/// A fixed-size worker-thread pool over a single injector channel.
///
/// Cheap to share via [`Arc`]; see the [module documentation](self) for the
/// deadlock-freedom and panic-containment contracts.
#[derive(Debug)]
pub struct WorkerPool {
    injector: Mutex<Option<Sender<Job>>>,
    queue: Arc<Mutex<Receiver<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (injector, receiver) = channel::<Job>();
        let queue = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("mlo-pool-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only while popping, never
                        // while running a job.
                        let job = lock_or_recover(&queue).recv();
                        match job {
                            Ok(job) => run_job(job),
                            Err(_) => break, // injector closed: shut down
                        }
                    })
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool {
            injector: Mutex::new(Some(injector)),
            queue,
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to one worker).
    pub fn with_available_parallelism() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a job for execution on some worker.
    ///
    /// A panic in the job is contained (the worker survives) but reported
    /// to nobody; submitters whose waiters depend on the job completing
    /// should use [`WorkerPool::execute_observed`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the pool is shutting down (only possible during `Drop`).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.submit(Job {
            run: Box::new(job),
            on_panic: None,
        });
    }

    /// Submits a job plus a panic observer: if the job panics, the pool
    /// captures the payload (and the triggering failpoint, when fault
    /// injection is active) into a [`JobPanic`] and invokes `on_panic` with
    /// it on the same worker.  Exactly one of `job` completing normally or
    /// `on_panic` running is guaranteed, so the submitter can always fill
    /// its result slot.
    ///
    /// # Panics
    ///
    /// Panics if the pool is shutting down (only possible during `Drop`).
    pub fn execute_observed(
        &self,
        job: impl FnOnce() + Send + 'static,
        on_panic: impl FnOnce(JobPanic) + Send + 'static,
    ) {
        self.submit(Job {
            run: Box::new(job),
            on_panic: Some(Box::new(on_panic)),
        });
    }

    fn submit(&self, job: Job) {
        lock_or_recover(&self.injector)
            .as_ref()
            .expect("pool is shutting down")
            .send(job)
            .expect("pool workers outlive the injector");
    }

    /// Pops one pending job and runs it on the *calling* thread.
    ///
    /// Returns `false` when no job could be claimed — either the queue is
    /// empty, or an idle worker is parked on the queue (in which case that
    /// worker will pick up any pending job itself, so there is nothing to
    /// help with).  Callers blocked on results of jobs they submitted call
    /// this in their wait loop, which keeps nested submissions
    /// deadlock-free (see the module docs).
    ///
    /// `try_lock` is essential: idle workers block inside `recv()` *while
    /// holding* the queue lock, so a blocking `lock()` here could park the
    /// helper until the next job arrives instead of returning.
    pub fn help_run_one(&self) -> bool {
        let job = match self.queue.try_lock() {
            Ok(receiver) => receiver.try_recv().ok(),
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner().try_recv().ok(),
            Err(TryLockError::WouldBlock) => None,
        };
        match job {
            Some(job) => {
                // Same panic containment as the worker loop: the popped job
                // may belong to an unrelated request, whose failure must
                // not unwind into the helping waiter — but its observer
                // still fires, so that request's waiters see the outcome.
                run_job(job);
                true
            }
            None => false,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector makes every worker's `recv` fail once the
        // queue drains; joining then guarantees no leaked threads.
        drop(lock_or_recover(&self.injector).take());
        let workers = std::mem::take(&mut *lock_or_recover(&self.workers));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn executes_jobs_on_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..32 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(pool); // must not hang
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn help_run_one_drains_the_queue_inline() {
        // A single-worker pool whose worker is parked on a nested wait: the
        // waiting submitter itself must be able to run the pending job.
        let pool = Arc::new(WorkerPool::new(1));
        let (outer_tx, outer_rx) = channel();
        let inner_pool = Arc::clone(&pool);
        pool.execute(move || {
            // This job occupies the only worker and submits a nested job,
            // then waits for it by helping.
            let (tx, rx) = channel();
            inner_pool.execute(move || tx.send(41u32).unwrap());
            let value = loop {
                if let Ok(v) = rx.try_recv() {
                    break v;
                }
                inner_pool.help_run_one();
            };
            outer_tx.send(value + 1).unwrap();
        });
        assert_eq!(outer_rx.recv().unwrap(), 42);
    }

    #[test]
    fn panicking_observed_job_reports_and_pool_stays_usable() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        pool.execute_observed(
            || panic!("strategy exploded"),
            move |panic| tx.send(panic).unwrap(),
        );
        let panic = rx.recv().unwrap();
        assert_eq!(panic.message, "strategy exploded");
        assert_eq!(panic.failpoint, None);
        // The single worker survived the panic and still runs jobs.
        let (tx, rx) = channel();
        pool.execute(move || tx.send(99u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 99);
    }

    #[test]
    fn successful_observed_job_never_calls_the_observer() {
        let pool = WorkerPool::new(1);
        let fired = Arc::new(AtomicUsize::new(0));
        let observer_fired = Arc::clone(&fired);
        let (tx, rx) = channel();
        pool.execute_observed(
            move || tx.send(1u32).unwrap(),
            move |_| {
                observer_fired.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(rx.recv().unwrap(), 1);
        drop(pool); // join workers so a stray observer would have run
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn help_run_one_delivers_panics_to_the_observer() {
        // Park the only worker so the panicking job stays queued, then help.
        let pool = Arc::new(WorkerPool::new(1));
        let (park_tx, park_rx) = channel::<()>();
        pool.execute(move || {
            park_rx.recv().ok();
        });
        // Give the worker a moment to claim the parking job.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (tx, rx) = channel();
        pool.execute_observed(
            || panic!("helped job exploded"),
            move |panic| tx.send(panic).unwrap(),
        );
        while !pool.help_run_one() {
            std::thread::yield_now();
        }
        let panic = rx.recv().unwrap();
        assert_eq!(panic.message, "helped job exploded");
        park_tx.send(()).unwrap();
    }

    #[test]
    fn injected_pool_panics_record_the_failpoint() {
        let _plan = crate::fault::scoped(
            crate::fault::FaultPlan::new()
                .with("pool.job", crate::fault::FaultTrigger::panic().times(1)),
        );
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        pool.execute_observed(|| {}, move |panic| tx.send(panic).unwrap());
        let panic = rx.recv().unwrap();
        assert_eq!(panic.failpoint.as_deref(), Some("pool.job"));
        assert!(panic.message.contains("pool.job"));
    }
}
