//! A small, self-contained worker-thread pool (std::thread + channels).
//!
//! The portfolio solver and `mlo-core`'s batch machinery both need to fan
//! work out over threads without pulling in an external executor (the
//! vendored dependency set is fixed).  [`WorkerPool`] is the shared
//! substrate: a fixed set of worker threads draining one injector channel of
//! boxed jobs.
//!
//! Two properties matter for the callers in this workspace:
//!
//! * **Nested submission must not deadlock.**  A batch job running *on* a
//!   pool worker may itself submit portfolio-member jobs to the same pool
//!   and block on their results.  Blocking callers therefore help out: while
//!   waiting they call [`WorkerPool::help_run_one`], which pops and runs a
//!   pending job inline instead of sleeping, so the queue always drains even
//!   when every worker is parked on a nested wait.
//! * **Shutdown joins.**  Dropping the pool closes the injector and joins
//!   every worker, so tests can assert that no threads leak.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of work executed by the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker-thread pool over a single injector channel.
///
/// Cheap to share via [`Arc`]; see the [module documentation](self) for the
/// deadlock-freedom contract.
#[derive(Debug)]
pub struct WorkerPool {
    injector: Mutex<Option<Sender<Job>>>,
    queue: Arc<Mutex<Receiver<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (injector, receiver) = channel::<Job>();
        let queue = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("mlo-pool-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only while popping, never
                        // while running a job.
                        let job = match queue.lock() {
                            Ok(receiver) => receiver.recv(),
                            Err(_) => break,
                        };
                        match job {
                            // A panicking job must not kill the worker —
                            // that would permanently shrink the pool.  The
                            // job's result channel closes with it, which is
                            // how submitters observe the failure.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break, // injector closed: shut down
                        }
                    })
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool {
            injector: Mutex::new(Some(injector)),
            queue,
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to one worker).
    pub fn with_available_parallelism() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a job for execution on some worker.
    ///
    /// # Panics
    ///
    /// Panics if the pool is shutting down (only possible during `Drop`).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.injector
            .lock()
            .expect("pool injector poisoned")
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("pool workers outlive the injector");
    }

    /// Pops one pending job and runs it on the *calling* thread.
    ///
    /// Returns `false` when no job could be claimed — either the queue is
    /// empty, or an idle worker is parked on the queue (in which case that
    /// worker will pick up any pending job itself, so there is nothing to
    /// help with).  Callers blocked on results of jobs they submitted call
    /// this in their wait loop, which keeps nested submissions
    /// deadlock-free (see the module docs).
    ///
    /// `try_lock` is essential: idle workers block inside `recv()` *while
    /// holding* the queue lock, so a blocking `lock()` here could park the
    /// helper until the next job arrives instead of returning.
    pub fn help_run_one(&self) -> bool {
        let job = match self.queue.try_lock() {
            Ok(receiver) => receiver.try_recv().ok(),
            Err(_) => None,
        };
        match job {
            Some(job) => {
                // Same panic isolation as the worker loop: the popped job
                // may belong to an unrelated request, whose failure must
                // not unwind into the helping waiter.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                true
            }
            None => false,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector makes every worker's `recv` fail once the
        // queue drains; joining then guarantees no leaked threads.
        drop(self.injector.lock().expect("pool injector poisoned").take());
        let workers = std::mem::take(&mut *self.workers.lock().expect("pool workers poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn executes_jobs_on_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..32 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(pool); // must not hang
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn help_run_one_drains_the_queue_inline() {
        // A single-worker pool whose worker is parked on a nested wait: the
        // waiting submitter itself must be able to run the pending job.
        let pool = Arc::new(WorkerPool::new(1));
        let (outer_tx, outer_rx) = channel();
        let inner_pool = Arc::clone(&pool);
        pool.execute(move || {
            // This job occupies the only worker and submits a nested job,
            // then waits for it by helping.
            let (tx, rx) = channel();
            inner_pool.execute(move || tx.send(41u32).unwrap());
            let value = loop {
                if let Ok(v) = rx.try_recv() {
                    break v;
                }
                inner_pool.help_run_one();
            };
            outer_tx.send(value + 1).unwrap();
        });
        assert_eq!(outer_rx.recv().unwrap(), 42);
    }
}
