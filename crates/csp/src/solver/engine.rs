//! The depth-first search engine behind every scheme.
//!
//! One recursive routine implements chronological backtracking,
//! conflict-directed backjumping and forward checking; the [`SearchEngine`]
//! configuration decides which parts are active.  Conflict sets follow the
//! classic formulation: a dead end reports the set of assigned variables
//! that contributed to it, and with backjumping enabled an ancestor that is
//! not in that set is skipped without re-instantiating it (paper, Figure 3).
//!
//! The inner loops run entirely on the network's compiled
//! [`BitKernel`](crate::bitset::BitKernel): consistency tests are bit
//! probes, live domains are word-packed masks, and forward checking is one
//! word-AND per neighbour — the [`BinaryConstraint`](crate::BinaryConstraint)
//! hash tables are never touched after the kernel is built.

use super::ac3::ac3_kernel;
use super::ordering::{order_values, select_variable};
use super::portfolio::CancelToken;
use super::{Ac3Outcome, SearchEngine, SearchLimits, SearchStats, SolveResult};
use crate::assignment::{Assignment, Solution};
use crate::bitset::{BitDomains, BitKernel};
use crate::network::{ConstraintNetwork, VarId};
use crate::Value;
use rand::rngs::StdRng;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// How often (in visited nodes) the wall-clock deadline is polled; keeps
/// `Instant::now` off the per-node hot path.
const DEADLINE_POLL_MASK: u64 = 0x7F;

/// Runs the configured search on a network with a caller-owned RNG and
/// per-run limits.
pub(super) fn run<V: Value>(
    config: &SearchEngine,
    network: &ConstraintNetwork<V>,
    rng: &mut StdRng,
    limits: &SearchLimits,
    cancel: Option<&CancelToken>,
) -> SolveResult<V> {
    crate::fail_point!("search.run");
    let start = Instant::now();
    let mut stats = SearchStats::default();
    let mut hit_limit = false;
    let mut hit_deadline = false;
    let mut was_cancelled = false;

    // The compiled execution kernel (cached in the shared storage) and the
    // word-packed live domains, with the restriction mask of a view
    // already intersected in.
    let kernel = Arc::clone(network.kernel());
    let mut live = kernel.masked_domains(network.mask().map(|m| &**m));

    // A variable with an empty (live) domain makes the network trivially
    // unsatisfiable.
    if network.variables().any(|v| live.is_empty(v)) {
        return SolveResult {
            solution: None,
            stats,
            elapsed: start.elapsed(),
            hit_node_limit: false,
            hit_deadline: false,
            cancelled: false,
        };
    }

    if config.ac3_preprocessing {
        if let Ac3Outcome::Wipeout(_) = ac3_kernel(&kernel, &mut live, &mut stats) {
            return SolveResult {
                solution: None,
                stats,
                elapsed: start.elapsed(),
                hit_node_limit: false,
                hit_deadline: false,
                cancelled: false,
            };
        }
    }

    let mut assignment = Assignment::new(network.variable_count());
    let mut ctx = Context {
        config,
        kernel: &kernel,
        limits,
        cancel,
        stats: &mut stats,
        rng,
        hit_limit: &mut hit_limit,
        hit_deadline: &mut hit_deadline,
        cancelled: &mut was_cancelled,
    };
    let outcome = search(&mut ctx, &mut assignment, &mut live);
    let solution = match outcome {
        Outcome::Found => Some(Solution::from_assignment(network, &assignment)),
        Outcome::DeadEnd(_) => None,
    };
    SolveResult {
        solution,
        stats,
        elapsed: start.elapsed(),
        hit_node_limit: hit_limit,
        hit_deadline,
        cancelled: was_cancelled,
    }
}

/// Result of exploring a subtree.
enum Outcome {
    /// A complete consistent assignment was reached (it is left in place).
    Found,
    /// The subtree is exhausted; the set is the conflict set — the assigned
    /// variables implicated in every failure below.
    DeadEnd(HashSet<VarId>),
}

struct Context<'a> {
    config: &'a SearchEngine,
    kernel: &'a BitKernel,
    limits: &'a SearchLimits,
    cancel: Option<&'a CancelToken>,
    stats: &'a mut SearchStats,
    rng: &'a mut StdRng,
    hit_limit: &'a mut bool,
    hit_deadline: &'a mut bool,
    cancelled: &'a mut bool,
}

impl Context<'_> {
    fn limit_reached(&mut self) -> bool {
        if let Some(limit) = self.limits.node_limit {
            if self.stats.nodes_visited >= limit {
                *self.hit_limit = true;
                return true;
            }
        }
        if self.stats.nodes_visited & DEADLINE_POLL_MASK == 0 {
            if let Some(deadline) = self.limits.deadline {
                if Instant::now() >= deadline {
                    *self.hit_deadline = true;
                    return true;
                }
            }
            if let Some(cancel) = self.cancel {
                if cancel.is_cancelled() {
                    *self.cancelled = true;
                    return true;
                }
            }
        }
        false
    }
}

fn search(ctx: &mut Context<'_>, assignment: &mut Assignment, live: &mut BitDomains) -> Outcome {
    if assignment.is_complete() {
        return Outcome::Found;
    }
    let var = match select_variable(
        ctx.config.variable_ordering,
        ctx.kernel,
        assignment,
        live,
        ctx.rng,
    ) {
        Some(v) => v,
        None => return Outcome::Found,
    };
    let candidates = live.live_values(var);
    let values = order_values(
        ctx.config.value_ordering,
        ctx.kernel,
        assignment,
        live,
        var,
        &candidates,
        ctx.rng,
    );

    let mut conflict_union: HashSet<VarId> = HashSet::new();
    let mut conflicts: Vec<VarId> = Vec::new();
    for value in values {
        if *ctx.hit_limit || *ctx.hit_deadline || *ctx.cancelled || ctx.limit_reached() {
            break;
        }
        ctx.stats.nodes_visited += 1;
        ctx.stats.max_depth = ctx.stats.max_depth.max(assignment.assigned_count() + 1);

        // Consistent-partial-instantiation test against the variables
        // already assigned (paper, Section 4) — one bit probe per assigned
        // neighbour.
        conflicts.clear();
        ctx.kernel.collect_conflicts(
            assignment,
            var,
            value,
            &mut ctx.stats.consistency_checks,
            &mut conflicts,
        );
        if !conflicts.is_empty() {
            conflict_union.extend(conflicts.iter().copied());
            continue;
        }

        assignment.assign(var, value);

        // Forward checking: restrict unassigned neighbours to values
        // compatible with this assignment — one fused lane-wide pass per
        // neighbour (`would_remove` test + snapshot + `live &= support_row`),
        // so a neighbour the row cannot prune is touched exactly once.
        let mut saved: Vec<(VarId, Vec<u64>)> = Vec::new();
        let mut wiped_out: Option<VarId> = None;
        if ctx.config.forward_checking {
            for edge in ctx.kernel.edges(var) {
                let neighbour = edge.other;
                if assignment.is_assigned(neighbour) {
                    continue;
                }
                let row = ctx
                    .kernel
                    .constraint(edge.constraint)
                    .row(edge.var_is_first, value);
                ctx.stats.consistency_checks += live.count(neighbour) as u64;
                if let Some((snapshot, removed)) = live.intersect_with_save(neighbour, row) {
                    saved.push((neighbour, snapshot));
                    ctx.stats.prunings += removed as u64;
                    if live.is_empty(neighbour) {
                        wiped_out = Some(neighbour);
                        break;
                    }
                }
            }
        }

        if let Some(victim) = wiped_out {
            // The wipeout implicates this variable and every assigned
            // variable constraining the victim.
            for edge in ctx.kernel.edges(victim) {
                if edge.other != var && assignment.is_assigned(edge.other) {
                    conflict_union.insert(edge.other);
                }
            }
            restore(live, saved);
            assignment.unassign(var);
            continue;
        }

        match search(ctx, assignment, live) {
            Outcome::Found => return Outcome::Found,
            Outcome::DeadEnd(child_conflicts) => {
                restore(live, saved);
                assignment.unassign(var);
                if *ctx.hit_limit || *ctx.hit_deadline || *ctx.cancelled {
                    return Outcome::DeadEnd(conflict_union);
                }
                if ctx.config.backjumping && !child_conflicts.contains(&var) {
                    // This variable is not responsible for the failure below:
                    // skip re-instantiating it and jump further back
                    // (paper, Figure 3(b)).
                    ctx.stats.backjumps += 1;
                    return Outcome::DeadEnd(child_conflicts);
                }
                conflict_union.extend(child_conflicts.into_iter().filter(|&v| v != var));
            }
        }
    }

    ctx.stats.backtracks += 1;
    Outcome::DeadEnd(conflict_union)
}

fn restore(live: &mut BitDomains, saved: Vec<(VarId, Vec<u64>)>) {
    for (var, words) in saved {
        live.restore(var, &words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Scheme, ValueOrdering, VariableOrdering};

    /// The example network of the paper's Section 3.
    fn paper_network() -> (ConstraintNetwork<(i64, i64)>, Vec<VarId>) {
        let mut net = ConstraintNetwork::new();
        let q1 = net.add_variable("Q1", vec![(1, 0), (0, 1), (1, 1)]);
        let q2 = net.add_variable("Q2", vec![(1, -1), (1, 1)]);
        let q3 = net.add_variable("Q3", vec![(0, 1), (1, 1), (1, 2)]);
        let q4 = net.add_variable("Q4", vec![(1, 0), (0, 1), (1, 1)]);
        net.add_constraint(q1, q2, vec![((1, 0), (1, 1)), ((0, 1), (1, -1))])
            .unwrap();
        net.add_constraint(
            q1,
            q3,
            vec![((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))],
        )
        .unwrap();
        net.add_constraint(q1, q4, vec![((1, 0), (1, 0)), ((0, 1), (0, 1))])
            .unwrap();
        net.add_constraint(q2, q3, vec![((1, 1), (0, 1)), ((1, -1), (1, 1))])
            .unwrap();
        // The paper's S24 lists [(1 0), (0 1)], but (1 0) is not in M2 (a typo
        // in the published example); (1 -1) keeps the published solution.
        net.add_constraint(q2, q4, vec![((1, -1), (0, 1)), ((1, 1), (1, 0))])
            .unwrap();
        net.add_constraint(q3, q4, vec![((0, 1), (1, 0))]).unwrap();
        (net, vec![q1, q2, q3, q4])
    }

    fn unsatisfiable_network() -> ConstraintNetwork<i32> {
        // Three variables in a triangle requiring pairwise inequality over a
        // two-value domain: impossible.
        let mut net = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![0, 1]);
        let neq = vec![(0, 1), (1, 0)];
        net.add_constraint(a, b, neq.clone()).unwrap();
        net.add_constraint(b, c, neq.clone()).unwrap();
        net.add_constraint(a, c, neq).unwrap();
        net
    }

    #[test]
    fn all_schemes_solve_the_paper_network() {
        let (net, _) = paper_network();
        for scheme in [
            Scheme::Base,
            Scheme::Enhanced,
            Scheme::ForwardChecking,
            Scheme::FullPropagation,
        ] {
            let result = SearchEngine::with_scheme(scheme).solve(&net);
            let solution = result
                .solution
                .unwrap_or_else(|| panic!("{scheme} failed on the paper network"));
            // Verify the solution satisfies every constraint.
            let mut asg = Assignment::new(net.variable_count());
            for v in net.variables() {
                asg.assign(v, solution.value_index(v));
            }
            assert_eq!(
                net.is_solution(&asg),
                Ok(true),
                "{scheme} returned a non-solution"
            );
            assert!(result.stats.nodes_visited >= net.variable_count() as u64);
            assert!(!result.hit_node_limit);
        }
    }

    #[test]
    fn paper_network_has_the_published_solution() {
        // The enhanced scheme (deterministic orderings) finds the exact
        // assignment printed in the paper: Q1=(1 0), Q2=(1 1), Q3=(0 1),
        // Q4=(1 0).
        let (net, vars) = paper_network();
        let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
        let s = result.solution.unwrap();
        assert_eq!(s.value(vars[0]), &(1, 0));
        assert_eq!(s.value(vars[1]), &(1, 1));
        assert_eq!(s.value(vars[2]), &(0, 1));
        assert_eq!(s.value(vars[3]), &(1, 0));
    }

    #[test]
    fn all_schemes_agree_on_unsatisfiability() {
        let net = unsatisfiable_network();
        for scheme in [
            Scheme::Base,
            Scheme::Enhanced,
            Scheme::ForwardChecking,
            Scheme::FullPropagation,
        ] {
            let result = SearchEngine::with_scheme(scheme).solve(&net);
            assert!(
                result.solution.is_none(),
                "{scheme} hallucinated a solution"
            );
            assert!(!result.hit_node_limit);
            assert!(result.stats.backtracks > 0 || result.stats.prunings > 0);
        }
    }

    #[test]
    fn variables_without_constraints_get_any_value() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        net.add_variable("free1", vec![7, 8]);
        net.add_variable("free2", vec![1]);
        let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
        let s = result.solution.unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(VarId::new(1)), &1);
    }

    #[test]
    fn empty_network_is_trivially_satisfiable() {
        let net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let result = SearchEngine::with_scheme(Scheme::Base).solve(&net);
        assert!(result.is_satisfiable());
        assert_eq!(result.solution.unwrap().len(), 0);
    }

    #[test]
    fn empty_domain_makes_network_unsatisfiable() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        net.add_variable("a", vec![]);
        net.add_variable("b", vec![1]);
        let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
        assert!(!result.is_satisfiable());
        assert_eq!(result.stats.nodes_visited, 0);
    }

    #[test]
    fn node_limit_terminates_search() {
        // A larger unsatisfiable problem (4-colouring-style clash) would
        // take many nodes; a tiny limit must cut it off and report so.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let vars: Vec<VarId> = (0..8)
            .map(|i| net.add_variable(format!("v{i}"), (0..3).collect()))
            .collect();
        let neq: Vec<(i32, i32)> = (0..3)
            .flat_map(|a| (0..3).filter(move |&b| a != b).map(move |b| (a, b)))
            .collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                net.add_constraint(vars[i], vars[j], neq.clone()).unwrap();
            }
        }
        let result = SearchEngine::with_scheme(Scheme::Base)
            .node_limit(20)
            .solve(&net);
        assert!(result.hit_node_limit);
        assert!(result.solution.is_none());
        assert!(result.stats.nodes_visited <= 21);
    }

    #[test]
    fn base_scheme_is_seed_reproducible() {
        let (net, _) = paper_network();
        let r1 = SearchEngine::with_scheme(Scheme::Base).seed(11).solve(&net);
        let r2 = SearchEngine::with_scheme(Scheme::Base).seed(11).solve(&net);
        assert_eq!(r1.stats, r2.stats);
        let s1 = r1.solution.unwrap();
        let s2 = r2.solution.unwrap();
        assert_eq!(s1.values(), s2.values());
    }

    #[test]
    fn enhanced_beats_base_on_average_over_planted_networks() {
        // The enhanced scheme is a heuristic: on a tiny instance it can lose
        // to a lucky random order, so the comparison (which mirrors the
        // Table 2 trend) is made on a moderately sized planted-satisfiable
        // network, averaging the base scheme over several seeds.
        let spec = crate::random::RandomNetworkSpec {
            variables: 18,
            domain_size: 5,
            density: 0.45,
            tightness: 0.45,
            seed: 7,
        };
        let (net, _) = crate::random::satisfiable_network(&spec);
        let enhanced = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
        assert!(enhanced.is_satisfiable());
        let mut base_total = 0u64;
        let seeds = [1u64, 2, 3, 4, 5];
        for &s in &seeds {
            let base = SearchEngine::with_scheme(Scheme::Base).seed(s).solve(&net);
            assert!(base.is_satisfiable());
            base_total += base.stats.nodes_visited;
        }
        let base_avg = base_total / seeds.len() as u64;
        assert!(
            enhanced.stats.nodes_visited <= base_avg,
            "enhanced ({}) should not visit more nodes than base on average ({})",
            enhanced.stats.nodes_visited,
            base_avg
        );
    }

    #[test]
    fn backjumping_skips_irrelevant_variables() {
        // Construct the Figure 3 situation: Qk conflicts with Qj, while Qi
        // (assigned between them) shares no constraint with Qj.  With
        // backjumping the solver must skip Qi when Qj dead-ends.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let qk = net.add_variable("Qk", vec![0, 1]);
        let qi = net.add_variable("Qi", vec![0, 1]);
        let qj = net.add_variable("Qj", vec![0, 1]);
        // Qj is only constrained by Qk, and only Qk=1 supports any value.
        net.add_constraint(qk, qj, vec![(1, 0), (1, 1)]).unwrap();
        // Qi is loosely constrained by Qk so it sits between them in the
        // search order but is irrelevant to Qj's failure.
        net.add_constraint(qk, qi, vec![(0, 0), (0, 1), (1, 0), (1, 1)])
            .unwrap();

        let with_jump = SearchEngine {
            variable_ordering: VariableOrdering::Lexicographic,
            value_ordering: ValueOrdering::DomainOrder,
            backjumping: true,
            forward_checking: false,
            ac3_preprocessing: false,
            node_limit: None,
            seed: 0,
        };
        let without_jump = SearchEngine {
            backjumping: false,
            ..with_jump.clone()
        };
        let r_jump = with_jump.solve(&net);
        let r_chrono = without_jump.solve(&net);
        assert!(r_jump.is_satisfiable());
        assert!(r_chrono.is_satisfiable());
        assert!(r_jump.stats.backjumps > 0, "expected at least one backjump");
        assert!(
            r_jump.stats.nodes_visited <= r_chrono.stats.nodes_visited,
            "backjumping should not increase the node count"
        );
    }

    #[test]
    fn forward_checking_prunes_and_agrees() {
        let (net, _) = paper_network();
        let fc = SearchEngine::with_scheme(Scheme::ForwardChecking).solve(&net);
        assert!(fc.is_satisfiable());
        assert!(fc.stats.prunings > 0);
        let plain = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
        assert_eq!(fc.is_satisfiable(), plain.is_satisfiable());
    }
}
