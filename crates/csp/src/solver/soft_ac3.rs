//! Soft AC-3: incumbent-driven weighted bound consistency on the dense
//! [`WeightKernel`].
//!
//! Exact weighted search lives or dies by its lower bound.  The classic
//! cost-based soft-arc-consistency move is to prune *values*, not just
//! nodes: delete value `v` from a live variable `x` whenever even the most
//! optimistic completion through `x = v` cannot strictly beat the
//! incumbent, and propagate those deletions to fixpoint with an AC-3-style
//! worklist (deleting a value lowers its neighbours' optimism, which can
//! delete more values).  [`SoftAc3`] implements that move on top of the
//! lane-padded bit-rows and dense weight tables from the kernel layer, so
//! each check is a handful of word ops.
//!
//! ## The bound
//!
//! For a prefix of assignments with gained weight `W`, classify every
//! constraint by its endpoints: **open** (both unassigned), **half-open**
//! (exactly one assigned) or **closed** (both assigned; its exact weight is
//! already inside `W`).  The propagator maintains:
//!
//! * per-(constraint, side, value) **live-masked row maxima** (in a
//!   [`LiveRowMax`]): the best weight `value` can still collect from the
//!   constraint, over partners that are both allowed and live;
//! * per half-open constraint the **half max**: the best weight its
//!   assigned value can still collect over the live values of its
//!   unassigned endpoint;
//! * `pot[x][v]` = Σ over `x`'s open constraints of the row max of `v`,
//!   plus Σ over `x`'s half-open constraints of the *exact* weight
//!   `w(v, assigned partner value)`;
//! * `own[x]` = Σ over `x`'s open constraints of their live-pair max
//!   (`cmax`), plus Σ over `x`'s half-open constraints of their half max;
//! * `total` = Σ over open constraints of `cmax` + Σ over half-open
//!   constraints of their half max.
//!
//! Then `ub(x, v) = W + pot[x][v] + (total − own[x])` bounds every
//! completion that assigns `x = v`, and `W + total` bounds the node itself.
//! A value is deleted when `ub(x, v) <= local` or `ub(x, v) < shared`,
//! where `local` is the caller's own best (ties cannot improve it) and
//! `shared` is the cooperative incumbent (strict `<`, preserving the
//! portfolio/steal tie contracts: anything *at* the shared bound is still
//! explored, so the canonical tie-break never depends on propagation
//! timing).
//!
//! ## Incremental maintenance
//!
//! Deleting a value only ever *lowers* aggregates.  A row max is rescanned
//! (one [`WeightConstraint::live_row_max`](crate::bitset::WeightConstraint::live_row_max)
//! over the lane-padded bit-row)
//! only when the deletion kills its current argmax; `cmax`, half maxima,
//! `pot`, `own` and `total` absorb O(1) float deltas otherwise.  Every
//! mutation is recorded in an undo journal, so backtracking is an exact
//! reverse replay to a [`SoftMark`] — which is also how the work-stealing
//! scheduler rebuilds propagation state deterministically from a stolen
//! frame's trail (clone the root template, replay `assign` per trail entry,
//! propagate once).
//!
//! Assigning `x = value` additionally **forward-checks** every open
//! constraint of `x`: the unassigned partner's live set is intersected with
//! the bit-row of `value`, which removes only values that are hard-
//! incompatible with the assignment (never part of any completion of this
//! subtree) — so search below a propagated node needs no conflict probes.
//!
//! The float deltas are exact for integer-valued weight tables (all bench
//! and test instances); for general floats the deltas can drift within an
//! ulp of the rescanned value, which perturbs only *when* a subtree is cut,
//! never a reported weight — results remain bit-identical to the
//! unpropagated search either way because deletions are restricted to
//! completions that can't (locally) or can't strictly (shared) beat the
//! incumbent.

use crate::bitset::{BitDomains, BitKernel, DomainMask, LiveRowMax, WeightKernel};
use crate::network::VarId;
use crate::solver::SearchStats;
use std::collections::VecDeque;
use std::sync::Arc;

/// A position in the [`SoftAc3`] undo journal; [`SoftAc3::undo_to`] rewinds
/// every mutation made after the mark was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftMark {
    ops: usize,
    words: usize,
}

impl SoftMark {
    /// The committed baseline (what [`SoftAc3::undo_all`] rewinds to).
    pub const ROOT: SoftMark = SoftMark { ops: 0, words: 0 };
}

/// The propagator's only failure: the current subtree is dead — a domain
/// wiped out, or the node bound cannot beat the incumbent.  The caller's
/// move is always the same (count a pruning and rewind to its mark), so
/// the error carries no payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wipeout;

/// One journaled mutation (old values; undo is a reverse replay).
#[derive(Debug, Clone, Copy)]
enum Op {
    Assigned {
        var: u32,
    },
    /// `len` words for `var` sit at the tail of the saved-words stack.
    Words {
        var: u32,
        len: u32,
    },
    RowMax {
        slot: u32,
        max: f64,
        arg: u32,
    },
    Cmax {
        ci: u32,
        max: f64,
    },
    HalfMax {
        ci: u32,
        max: f64,
        arg: u32,
    },
    Pot {
        slot: u32,
        val: f64,
    },
    Own {
        var: u32,
        val: f64,
    },
    Total {
        val: f64,
    },
}

/// The weighted bound-consistency propagator (see the [module
/// docs](self)).
///
/// Cloning copies the whole working set; the searches clone one
/// root-propagated template per worker and then only journal/undo.
#[derive(Debug, Clone)]
pub struct SoftAc3 {
    kernel: Arc<BitKernel>,
    weights: Arc<WeightKernel>,
    /// Live domains under propagation (the searches keep their own static
    /// value lists and skip values dead here).
    domains: BitDomains,
    /// Live-masked row maxima + per-constraint live-pair maxima.
    agg: LiveRowMax,
    /// Per half-open constraint: best weight of its assigned value over
    /// the live values of its unassigned endpoint (+ argmax, `u32::MAX`
    /// when stale/closed — only meaningful while the constraint is
    /// half-open).
    half_max: Vec<f64>,
    half_arg: Vec<u32>,
    /// Flat per-(var, value) optimistic potential (`pot_off` indexes it).
    pot: Vec<f64>,
    pot_off: Vec<u32>,
    /// Per-variable share of `total` contributed by its own constraints.
    own: Vec<f64>,
    /// Optimistic completion weight of the current prefix (Σ open `cmax`
    /// + Σ half-open half maxima).
    total: f64,
    assigned: Vec<bool>,
    assigned_value: Vec<u32>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    journal: Vec<Op>,
    saved_words: Vec<u64>,
    /// Reusable live-value scratch for `revise` (no per-node allocation).
    scratch: Vec<usize>,
}

impl SoftAc3 {
    /// Builds the root working set over the masked domains.  Call
    /// [`root_propagate`](Self::root_propagate) (then
    /// [`commit`](Self::commit)) before searching.
    pub fn new(
        kernel: &Arc<BitKernel>,
        weights: &Arc<WeightKernel>,
        mask: Option<&DomainMask>,
    ) -> Self {
        let domains = kernel.masked_domains(mask);
        let agg = LiveRowMax::build(weights, kernel, &domains);
        let vars = kernel.variable_count();
        let count = kernel.constraint_count();
        let mut pot_off = Vec::with_capacity(vars + 1);
        let mut flat = 0u32;
        for v in 0..vars {
            pot_off.push(flat);
            flat += kernel.domain_size(VarId::new(v)) as u32;
        }
        pot_off.push(flat);
        let mut pot = vec![f64::NEG_INFINITY; flat as usize];
        let mut own = vec![0.0f64; vars];
        let mut total = 0.0f64;
        for ci in 0..count {
            total += agg.cmax(ci);
        }
        for v in 0..vars {
            let var = VarId::new(v);
            for edge in kernel.edges(var) {
                own[v] += agg.cmax(edge.constraint);
            }
            for value in 0..kernel.domain_size(var) {
                if !domains.contains(var, value) {
                    continue;
                }
                let mut p = 0.0;
                for edge in kernel.edges(var) {
                    p += agg.get(edge.constraint, edge.var_is_first, value).0;
                }
                pot[pot_off[v] as usize + value] = p;
            }
        }
        SoftAc3 {
            kernel: Arc::clone(kernel),
            weights: Arc::clone(weights),
            domains,
            agg,
            half_max: vec![f64::NEG_INFINITY; count],
            half_arg: vec![u32::MAX; count],
            pot,
            pot_off,
            own,
            total,
            assigned: vec![false; vars],
            assigned_value: vec![u32::MAX; vars],
            queue: VecDeque::with_capacity(vars),
            in_queue: vec![false; vars],
            journal: Vec::with_capacity(256),
            saved_words: Vec::with_capacity(64),
            scratch: Vec::with_capacity(8),
        }
    }

    /// Runs the root fixpoint with no incumbent: only values with *no*
    /// completion at all (`−inf` potential — hard arc inconsistency) are
    /// deleted, which establishes the invariant that every live value has a
    /// finite potential.  `Err` means the network is arc-inconsistent (no
    /// solution).
    pub fn root_propagate(&mut self, stats: &mut SearchStats) -> Result<(), Wipeout> {
        self.propagate(0.0, f64::NEG_INFINITY, f64::NEG_INFINITY, stats)
    }

    /// Freezes the current state as the committed baseline
    /// ([`SoftMark::ROOT`]): the journal is cleared, so
    /// [`undo_all`](Self::undo_all) rewinds exactly here.
    pub fn commit(&mut self) {
        self.journal.clear();
        self.saved_words.clear();
    }

    /// The current journal position.
    #[inline]
    pub fn mark(&self) -> SoftMark {
        SoftMark {
            ops: self.journal.len(),
            words: self.saved_words.len(),
        }
    }

    /// Rewinds every mutation made after `mark` was taken.
    pub fn undo_to(&mut self, mark: SoftMark) {
        while self.journal.len() > mark.ops {
            match self.journal.pop().expect("journal underflow") {
                Op::Assigned { var } => self.assigned[var as usize] = false,
                Op::Words { var, len } => {
                    let start = self.saved_words.len() - len as usize;
                    self.domains
                        .restore(VarId::new(var as usize), &self.saved_words[start..]);
                    self.saved_words.truncate(start);
                }
                Op::RowMax { slot, max, arg } => {
                    self.agg.set_slot(slot as usize, max, arg);
                }
                Op::Cmax { ci, max } => {
                    self.agg.set_cmax(ci as usize, max);
                }
                Op::HalfMax { ci, max, arg } => {
                    self.half_max[ci as usize] = max;
                    self.half_arg[ci as usize] = arg;
                }
                Op::Pot { slot, val } => self.pot[slot as usize] = val,
                Op::Own { var, val } => self.own[var as usize] = val,
                Op::Total { val } => self.total = val,
            }
        }
        debug_assert_eq!(self.saved_words.len(), mark.words);
    }

    /// Rewinds to the committed baseline (frame cleanup in the stealing
    /// scheduler).
    pub fn undo_all(&mut self) {
        self.undo_to(SoftMark::ROOT);
    }

    /// Whether `value` of `var` is still live under propagation.
    #[inline]
    pub fn is_live(&self, var: VarId, value: usize) -> bool {
        self.domains.contains(var, value)
    }

    /// The optimistic completion weight of the current prefix (`W + total`
    /// bounds the node).
    #[inline]
    pub fn optimistic_total(&self) -> f64 {
        self.total
    }

    #[inline]
    fn pot_slot(&self, var: usize, value: usize) -> usize {
        self.pot_off[var] as usize + value
    }

    #[inline]
    fn node_pruned(&self, prefix: f64, local: f64, shared: f64) -> bool {
        let ub = prefix + self.total;
        ub <= local || ub < shared
    }

    /// Records `var := value` (a live value): reclassifies its constraints
    /// (open → half-open, half-open → closed), forward-checks every open
    /// constraint (removals are hard-incompatible values, never part of any
    /// completion of this subtree) and updates the aggregates.  `Err` means
    /// a partner domain wiped out — the subtree is empty.  All mutations
    /// land in the journal; the caller rewinds with a pre-assign
    /// [`SoftMark`].
    pub fn assign(&mut self, var: VarId, value: usize) -> Result<(), Wipeout> {
        debug_assert!(self.domains.contains(var, value));
        let x = var.index();
        self.journal.push(Op::Assigned { var: x as u32 });
        self.assigned[x] = true;
        self.assigned_value[x] = value as u32;
        let edge_count = self.kernel.edges(var).len();
        for ei in 0..edge_count {
            let edge = self.kernel.edges(var)[ei];
            let ci = edge.constraint;
            let y = edge.other;
            if self.assigned[y.index()] {
                // Half-open (x was the unassigned endpoint) → closed: the
                // realized pair weight is the caller's `gained`; drop the
                // optimistic half from `total`.  `own[x]` is left as-is —
                // it is only read while `x` is unassigned, and not
                // journaling it makes undo restore the then-correct value
                // for free.
                self.journal.push(Op::Total { val: self.total });
                self.total -= self.half_max[ci];
                continue;
            }
            // Open → half-open.
            let yw = self.domains.words(y);
            let row = self.kernel.constraint(ci).row(edge.var_is_first, value);
            let changed = crate::simd::andnot_any(yw, row);
            if changed {
                let len = yw.len() as u32;
                self.saved_words.extend_from_slice(yw);
                self.journal.push(Op::Words {
                    var: y.index() as u32,
                    len,
                });
                self.domains.intersect(y, row);
                if self.domains.is_empty(y) {
                    return Err(Wipeout);
                }
            }
            // Swap the constraint's open contribution (cmax) for the half
            // max of the just-assigned value over the forward-checked live
            // partner set.
            let (half, half_arg) = self.weights.constraint(ci).live_row_max(
                self.kernel.constraint(ci),
                edge.var_is_first,
                value,
                self.domains.words(y),
            );
            self.journal.push(Op::HalfMax {
                ci: ci as u32,
                max: self.half_max[ci],
                arg: self.half_arg[ci],
            });
            self.half_max[ci] = half;
            self.half_arg[ci] = half_arg;
            let delta = half - self.agg.cmax(ci);
            if delta != 0.0 {
                self.journal.push(Op::Total { val: self.total });
                self.total += delta;
                self.journal.push(Op::Own {
                    var: y.index() as u32,
                    val: self.own[y.index()],
                });
                self.own[y.index()] += delta;
            }
            // The partner's potentials tighten from "best over x's live
            // values" to the exact weight against `value`.
            let y_side = !edge.var_is_first;
            for w in 0..self.kernel.domain_size(y) {
                if !self.domains.contains(y, w) {
                    continue;
                }
                let entry = self.agg.get(ci, y_side, w).0;
                let exact = self.weights.constraint(ci).oriented(y_side, w, value);
                if exact != entry {
                    let slot = self.pot_slot(y.index(), w);
                    self.journal.push(Op::Pot {
                        slot: slot as u32,
                        val: self.pot[slot],
                    });
                    self.pot[slot] += exact - entry;
                }
            }
            // Aggregate fallout of the forward-check removals (their pot /
            // row-max / cmax effects on y's *other* constraints).
            if changed {
                let len = self.domains.words(y).len();
                let start = self.saved_words.len() - len;
                for wi in 0..len {
                    let mut gone = self.saved_words[start + wi] & !self.domains.words(y)[wi];
                    while gone != 0 {
                        let u = wi * 64 + gone.trailing_zeros() as usize;
                        gone &= gone - 1;
                        self.on_removed(y, u);
                    }
                }
            }
        }
        Ok(())
    }

    /// Propagates to fixpoint under the current thresholds: seeds every
    /// unassigned variable (which also folds in any incumbent improvement
    /// since the last call — `shared` is re-read per node) and revises
    /// until quiescent.  `Err` means the node is pruned: its optimistic
    /// bound cannot beat the incumbent, or a domain wiped out.  The caller
    /// rewinds with a pre-call [`SoftMark`].
    pub fn propagate(
        &mut self,
        prefix: f64,
        local: f64,
        shared: f64,
        stats: &mut SearchStats,
    ) -> Result<(), Wipeout> {
        if self.node_pruned(prefix, local, shared) {
            return Err(Wipeout);
        }
        self.queue.clear();
        for flag in self.in_queue.iter_mut() {
            *flag = false;
        }
        for x in 0..self.assigned.len() {
            if !self.assigned[x] {
                self.queue.push_back(x as u32);
                self.in_queue[x] = true;
            }
        }
        while let Some(x) = self.queue.pop_front() {
            let x = x as usize;
            self.in_queue[x] = false;
            self.revise(x, prefix, local, shared, stats)?;
        }
        if self.node_pruned(prefix, local, shared) {
            return Err(Wipeout);
        }
        Ok(())
    }

    /// Deletes every value of `x` whose optimistic completion cannot beat
    /// the incumbent; `Err` on wipeout (the node is pruned).
    fn revise(
        &mut self,
        x: usize,
        prefix: f64,
        local: f64,
        shared: f64,
        stats: &mut SearchStats,
    ) -> Result<(), Wipeout> {
        crate::fail_point!("soft_ac3.revise");
        stats.soft_revisions += 1;
        let var = VarId::new(x);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.domains.for_each_live(var, |v| scratch.push(v));
        let mut outcome = Ok(());
        for &v in &scratch {
            // Aggregates shift as values die; re-read everything per value
            // (deletions can only tighten, so a pass stays sound).
            if !self.domains.contains(var, v) {
                continue;
            }
            let ub = prefix + self.pot[self.pot_slot(x, v)] + (self.total - self.own[x]);
            if ub <= local || ub < shared {
                stats.bound_deletions += 1;
                self.saved_words.extend_from_slice(self.domains.words(var));
                self.journal.push(Op::Words {
                    var: x as u32,
                    len: self.domains.words(var).len() as u32,
                });
                self.domains.remove(var, v);
                if self.domains.is_empty(var) {
                    outcome = Err(Wipeout);
                    break;
                }
                self.on_removed(var, v);
            }
        }
        self.scratch = scratch;
        outcome
    }

    /// Propagates the aggregate fallout of value `u` of `y` having been
    /// removed (bit already cleared and journaled): row maxima whose argmax
    /// died are rescanned, `cmax`/half maxima/`pot`/`own`/`total` absorb
    /// the deltas, and variables whose optimism dropped are re-enqueued.
    fn on_removed(&mut self, y: VarId, u: usize) {
        let edge_count = self.kernel.edges(y).len();
        for ei in 0..edge_count {
            let edge = self.kernel.edges(y)[ei];
            let ci = edge.constraint;
            let z = edge.other;
            if self.assigned[z.index()] {
                // Half-open with `y` the unassigned endpoint: refresh the
                // half max if its argmax died.  `total` and `own[y]` drop
                // together, so `y`'s own bound is unchanged — but every
                // *other* variable tightens via `total`.
                if self.half_arg[ci] == u as u32 {
                    let zv = self.assigned_value[z.index()] as usize;
                    let (half, half_arg) = self.weights.constraint(ci).live_row_max(
                        self.kernel.constraint(ci),
                        !edge.var_is_first,
                        zv,
                        self.domains.words(y),
                    );
                    let delta = half - self.half_max[ci];
                    self.journal.push(Op::HalfMax {
                        ci: ci as u32,
                        max: self.half_max[ci],
                        arg: self.half_arg[ci],
                    });
                    self.half_max[ci] = half;
                    self.half_arg[ci] = half_arg;
                    if delta != 0.0 {
                        self.journal.push(Op::Total { val: self.total });
                        self.total += delta;
                        self.journal.push(Op::Own {
                            var: y.index() as u32,
                            val: self.own[y.index()],
                        });
                        self.own[y.index()] += delta;
                        self.touch_all();
                    }
                }
                continue;
            }
            // Open: rescan the partner-side row maxima whose argmax was
            // `u`, then refresh the constraint's live-pair max.
            let z_side = !edge.var_is_first;
            let mut z_touched = false;
            for w in 0..self.kernel.domain_size(z) {
                if !self.domains.contains(z, w) {
                    continue;
                }
                let slot = self.agg.slot(ci, z_side, w);
                let (old_max, old_arg) = self.agg.get_slot(slot);
                if old_arg != u as u32 {
                    continue;
                }
                let (new_max, new_arg) = self.weights.constraint(ci).live_row_max(
                    self.kernel.constraint(ci),
                    z_side,
                    w,
                    self.domains.words(y),
                );
                self.journal.push(Op::RowMax {
                    slot: slot as u32,
                    max: old_max,
                    arg: old_arg,
                });
                self.agg.set_slot(slot, new_max, new_arg);
                let pot_slot = self.pot_slot(z.index(), w);
                self.journal.push(Op::Pot {
                    slot: pot_slot as u32,
                    val: self.pot[pot_slot],
                });
                self.pot[pot_slot] += new_max - old_max;
                z_touched = true;
            }
            let old_cmax = self.agg.cmax(ci);
            let new_cmax = self.agg.recompute_cmax(ci, &self.kernel, &self.domains);
            if new_cmax != old_cmax {
                self.journal.push(Op::Cmax {
                    ci: ci as u32,
                    max: old_cmax,
                });
                self.agg.set_cmax(ci, new_cmax);
                let delta = new_cmax - old_cmax;
                self.journal.push(Op::Total { val: self.total });
                self.total += delta;
                for end in [y, z] {
                    self.journal.push(Op::Own {
                        var: end.index() as u32,
                        val: self.own[end.index()],
                    });
                    self.own[end.index()] += delta;
                }
                self.touch_all();
            } else if z_touched {
                self.touch(z.index());
            }
        }
    }

    /// Re-enqueues an unassigned variable whose bound may have tightened.
    #[inline]
    fn touch(&mut self, x: usize) {
        if !self.assigned[x] && !self.in_queue[x] {
            self.in_queue[x] = true;
            self.queue.push_back(x as u32);
        }
    }

    /// Re-enqueues every unassigned variable (`total` dropped, which
    /// tightens everyone's bound).
    fn touch_all(&mut self) {
        for x in 0..self.assigned.len() {
            if !self.assigned[x] && !self.in_queue[x] {
                self.in_queue[x] = true;
                self.queue.push_back(x as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{planted_weighted_network, RandomNetworkSpec};
    use crate::solver::SearchStats;

    fn spec(variables: usize, seed: u64) -> RandomNetworkSpec {
        RandomNetworkSpec {
            variables,
            domain_size: 4,
            density: 0.5,
            tightness: 0.2,
            seed,
        }
    }

    fn build(variables: usize, seed: u64) -> SoftAc3 {
        let (weighted, _) = planted_weighted_network(&spec(variables, seed), 4.0, 8);
        let network = weighted.network().clone();
        let kernel = std::sync::Arc::clone(network.kernel());
        let weights = std::sync::Arc::clone(weighted.weight_kernel());
        SoftAc3::new(&kernel, &weights, network.mask().map(|m| &**m))
    }

    /// `total`, `own` and `pot` recomputed from scratch after arbitrary
    /// assign/undo churn must match the incrementally maintained values.
    fn check_invariants(soft: &SoftAc3) {
        let kernel = &soft.kernel;
        let weights = &soft.weights;
        let fresh = LiveRowMax::build(weights, kernel, &soft.domains);
        let mut total = 0.0;
        let mut own = vec![0.0f64; kernel.variable_count()];
        for ci in 0..kernel.constraint_count() {
            let bit = kernel.constraint(ci);
            let (a, b) = (bit.first(), bit.second());
            let open = !soft.assigned[a.index()] && !soft.assigned[b.index()];
            let closed = soft.assigned[a.index()] && soft.assigned[b.index()];
            if open {
                total += fresh.cmax(ci);
                own[a.index()] += fresh.cmax(ci);
                own[b.index()] += fresh.cmax(ci);
                assert_eq!(
                    soft.agg.cmax(ci).to_bits(),
                    fresh.cmax(ci).to_bits(),
                    "cmax {ci}"
                );
            } else if !closed {
                let (assigned, free, assigned_is_first) = if soft.assigned[a.index()] {
                    (a, b, true)
                } else {
                    (b, a, false)
                };
                let value = soft.assigned_value[assigned.index()] as usize;
                let (half, _) = weights.constraint(ci).live_row_max(
                    bit,
                    assigned_is_first,
                    value,
                    soft.domains.words(free),
                );
                total += half;
                own[free.index()] += half;
                assert_eq!(soft.half_max[ci].to_bits(), half.to_bits(), "half {ci}");
            }
        }
        assert_eq!(soft.total.to_bits(), total.to_bits(), "total");
        for (v, expected_own) in own.iter().enumerate() {
            if soft.assigned[v] {
                continue;
            }
            assert_eq!(soft.own[v].to_bits(), expected_own.to_bits(), "own {v}");
            let var = VarId::new(v);
            for value in 0..kernel.domain_size(var) {
                if !soft.domains.contains(var, value) {
                    continue;
                }
                let mut p = 0.0;
                for edge in kernel.edges(var) {
                    let other = edge.other;
                    if soft.assigned[other.index()] {
                        p += weights.constraint(edge.constraint).oriented(
                            edge.var_is_first,
                            value,
                            soft.assigned_value[other.index()] as usize,
                        );
                    } else {
                        p += fresh.get(edge.constraint, edge.var_is_first, value).0;
                    }
                }
                assert_eq!(
                    soft.pot[soft.pot_slot(v, value)].to_bits(),
                    p.to_bits(),
                    "pot {v}={value}"
                );
            }
        }
    }

    #[test]
    fn root_build_matches_scratch_recomputation() {
        for seed in 0..6 {
            let mut soft = build(8, seed);
            let mut stats = SearchStats::default();
            soft.root_propagate(&mut stats)
                .expect("planted instances are arc-consistent");
            soft.commit();
            check_invariants(&soft);
        }
    }

    #[test]
    fn assign_then_undo_restores_everything_exactly() {
        for seed in 0..6 {
            let mut soft = build(9, seed);
            let mut stats = SearchStats::default();
            soft.root_propagate(&mut stats).expect("arc-consistent");
            soft.commit();
            let snapshot = soft.clone();
            // Walk a few assignment prefixes, checking invariants at each
            // depth, then rewind and compare against the snapshot.
            let mut marks = Vec::new();
            for (x, value) in [(0usize, 0usize), (3, 1), (5, 2)] {
                let var = VarId::new(x);
                let Some(&value) = soft
                    .domains
                    .live_values(var)
                    .iter()
                    .find(|&&v| v >= value)
                    .or(soft.domains.live_values(var).first())
                else {
                    continue;
                };
                marks.push(soft.mark());
                if soft.assign(var, value).is_err()
                    || soft
                        .propagate(0.0, f64::NEG_INFINITY, 40.0, &mut stats)
                        .is_err()
                {
                    soft.undo_to(marks.pop().expect("pushed above"));
                    continue;
                }
                check_invariants(&soft);
            }
            while let Some(mark) = marks.pop() {
                soft.undo_to(mark);
            }
            assert_eq!(soft.total.to_bits(), snapshot.total.to_bits());
            assert_eq!(soft.pot.len(), snapshot.pot.len());
            for (a, b) in soft.pot.iter().zip(&snapshot.pot) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in soft.own.iter().zip(&snapshot.own) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for v in 0..soft.assigned.len() {
                let var = VarId::new(v);
                assert_eq!(
                    soft.domains.live_values(var),
                    snapshot.domains.live_values(var)
                );
            }
            assert!(soft.journal.is_empty());
            assert!(soft.saved_words.is_empty());
        }
    }

    #[test]
    fn incumbent_threshold_deletes_and_counts() {
        let mut soft = build(8, 11);
        let mut stats = SearchStats::default();
        soft.root_propagate(&mut stats).expect("arc-consistent");
        soft.commit();
        let live_before: usize = (0..soft.assigned.len())
            .map(|v| soft.domains.count(VarId::new(v)))
            .sum();
        // An unbeatable incumbent prunes the root node outright...
        assert!(soft
            .propagate(0.0, f64::INFINITY, f64::NEG_INFINITY, &mut stats)
            .is_err());
        soft.undo_all();
        // ...and a shared incumbent just below the root bound forces
        // value deletions without (necessarily) pruning the node.
        let tight = soft.total - 0.5;
        let mut stats = SearchStats::default();
        let outcome = soft.propagate(0.0, f64::NEG_INFINITY, tight, &mut stats);
        assert!(stats.soft_revisions > 0, "fixpoint revised something");
        if outcome.is_ok() {
            let live_after: usize = (0..soft.assigned.len())
                .map(|v| soft.domains.count(VarId::new(v)))
                .sum();
            assert!(stats.bound_deletions > 0);
            assert!(live_after < live_before);
        }
        soft.undo_all();
        let live_restored: usize = (0..soft.assigned.len())
            .map(|v| soft.domains.count(VarId::new(v)))
            .sum();
        assert_eq!(live_restored, live_before);
    }

    #[test]
    fn revise_fail_point_panics_are_injected() {
        let plan =
            crate::fault::FaultPlan::parse("soft_ac3.revise=panic@times=1").expect("valid plan");
        let _guard = crate::fault::scoped(plan);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut soft = build(6, 3);
            let mut stats = SearchStats::default();
            let _ = soft.root_propagate(&mut stats);
        }));
        assert!(caught.is_err(), "armed fail point fires inside revise");
    }

    #[test]
    fn revise_fail_point_delay_plan_completes() {
        let plan =
            crate::fault::FaultPlan::parse("soft_ac3.revise=delay(1)@times=2").expect("valid plan");
        let _guard = crate::fault::scoped(plan);
        let mut soft = build(6, 4);
        let mut stats = SearchStats::default();
        soft.root_propagate(&mut stats).expect("arc-consistent");
        assert!(stats.soft_revisions >= 2);
    }
}
