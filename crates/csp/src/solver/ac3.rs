//! AC-3 arc-consistency preprocessing.
//!
//! Not part of the paper's schemes, but a natural extension: removing values
//! that have no support in a neighbouring domain before the search starts
//! can only shrink the search tree, never change satisfiability.
//!
//! The revise step runs on the compiled kernel, allocation-free: while `y`
//! is unpruned the whole revision is **one lane-wide AND** of `live(x)` with
//! the constraint's precomputed support-nonzero mask
//! ([`crate::bitset::BitConstraint::support_nonzero`]); once `y` has been
//! pruned, [`crate::bitset::BitDomains::revise`] walks the constraint's
//! lane-aligned row block block-major with `live(y)` held hot.  Every
//! revision also accounts the bytes it touched into
//! [`SearchStats::bytes_touched`], the metric the perf gate's propagation
//! scenario audits to catch cache-blocking regressions.

use super::SearchStats;
use crate::bitset::{BitDomains, BitKernel};
use crate::network::{ConstraintNetwork, VarId};
use crate::Value;
use std::collections::VecDeque;

/// Result of running AC-3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ac3Outcome {
    /// Every remaining value has support in every neighbouring domain.
    Consistent,
    /// Some variable's domain was emptied; the network is unsatisfiable.
    Wipeout(VarId),
}

/// Makes `live` (the per-variable candidate lists) arc consistent with
/// respect to every constraint of the network.
///
/// Returns [`Ac3Outcome::Wipeout`] as soon as a domain becomes empty.
/// Pruning counts and consistency checks are recorded in `stats`.
///
/// Convenience wrapper over [`ac3_kernel`] for callers holding candidate
/// index lists; the lists come back in ascending index order.  On a
/// mask-based restricted view the restriction mask is intersected in
/// first, so masked-off values are neither kept nor counted as supports.
pub fn ac3<V: Value>(
    network: &ConstraintNetwork<V>,
    live: &mut [Vec<usize>],
    stats: &mut SearchStats,
) -> Ac3Outcome {
    let kernel = network.kernel();
    let mut domains = kernel.masked_domains(network.mask().map(|m| &**m));
    for (v, list) in live.iter().enumerate() {
        domains.restrict_to(VarId::new(v), list);
    }
    let outcome = ac3_kernel(kernel, &mut domains, stats);
    for (v, list) in live.iter_mut().enumerate() {
        *list = domains.live_values(VarId::new(v));
    }
    outcome
}

/// The kernel form of AC-3: makes a word-packed live-domain working set arc
/// consistent with respect to every constraint of the kernel.
///
/// Returns [`Ac3Outcome::Wipeout`] as soon as a domain becomes empty.
pub fn ac3_kernel(
    kernel: &BitKernel,
    live: &mut BitDomains,
    stats: &mut SearchStats,
) -> Ac3Outcome {
    // Work list of directed arcs (x, y, constraint) meaning "revise x
    // against y".
    let mut queue: VecDeque<(VarId, VarId, usize)> = VecDeque::new();
    for ci in 0..kernel.constraint_count() {
        let c = kernel.constraint(ci);
        queue.push_back((c.first(), c.second(), ci));
        queue.push_back((c.second(), c.first(), ci));
    }
    while let Some((x, y, ci)) = queue.pop_front() {
        if revise(kernel, live, x, y, ci, stats) {
            if live.is_empty(x) {
                return Ac3Outcome::Wipeout(x);
            }
            // Re-examine every arc pointing at x (other than from y).
            for edge in kernel.edges(x) {
                if edge.other != y {
                    queue.push_back((edge.other, x, edge.constraint));
                }
            }
        }
    }
    Ac3Outcome::Consistent
}

/// Removes the values of `x` that have no support among the live values of
/// `y` under constraint `ci`; returns whether anything was removed.
fn revise(
    kernel: &BitKernel,
    live: &mut BitDomains,
    x: VarId,
    y: VarId,
    ci: usize,
    stats: &mut SearchStats,
) -> bool {
    crate::fail_point!("ac3.revise");
    let constraint = kernel.constraint(ci);
    let x_is_first = constraint.first() == x;
    let y_count = live.count(y);
    let x_count = live.count(x);
    stats.consistency_checks += (x_count * y_count) as u64;
    let (removed, bytes) = if y_count == kernel.domain_size(y) {
        // While y is unpruned the precomputed support-nonzero mask decides
        // support for every value of x at once: the whole revision is one
        // lane-wide AND touching neither y's words nor the row block.
        let mask = constraint.support_nonzero(x_is_first);
        let removed = live.intersect(x, mask) as u64;
        (removed, 8 * 2 * mask.len() as u64)
    } else {
        live.revise(x, y, constraint, x_is_first)
    };
    stats.prunings += removed;
    stats.bytes_touched += bytes;
    removed > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_domains<V: Value>(net: &ConstraintNetwork<V>) -> Vec<Vec<usize>> {
        net.variables()
            .map(|v| (0..net.domain(v).len()).collect())
            .collect()
    }

    #[test]
    fn ac3_prunes_unsupported_values() {
        // a in {0,1,2}, b in {0}; constraint requires a == b, so a must be 0.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1, 2]);
        let b = net.add_variable("b", vec![0]);
        net.add_constraint(a, b, vec![(0, 0)]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()], vec![0]);
        assert_eq!(live[b.index()], vec![0]);
        assert_eq!(stats.prunings, 2);
        assert!(stats.consistency_checks > 0);
    }

    #[test]
    fn ac3_detects_wipeout() {
        // a != b with single-value equal domains: impossible.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0]);
        let b = net.add_variable("b", vec![0]);
        net.add_constraint(a, b, vec![]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        match ac3(&net, &mut live, &mut stats) {
            Ac3Outcome::Wipeout(v) => assert!(v == a || v == b),
            Ac3Outcome::Consistent => panic!("expected a wipeout"),
        }
    }

    #[test]
    fn ac3_propagates_through_a_chain() {
        // a -> b -> c equality chain with c fixed to 1 forces everything to 1.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![1]);
        net.add_constraint(a, b, vec![(0, 0), (1, 1)]).unwrap();
        net.add_constraint(b, c, vec![(1, 1)]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()], vec![1]);
        assert_eq!(live[b.index()], vec![1]);
    }

    #[test]
    fn ac3_respects_restriction_masks() {
        // a == b over {0,1,2}; restricting `a` to {2} must propagate: b's
        // values 0 and 1 lose their (masked-off) supports even though the
        // caller passed full candidate lists.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1, 2]);
        let b = net.add_variable("b", vec![0, 1, 2]);
        net.add_constraint(a, b, vec![(0, 0), (1, 1), (2, 2)])
            .unwrap();
        let view = net.restricted(a, &[2]).unwrap();
        let mut live = full_domains(&view);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&view, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()], vec![2]);
        assert_eq!(live[b.index()], vec![2]);
        // A restriction that wipes the domain out is detected.
        let wiped = net.restricted(a, &[0]).unwrap().restricted(a, &[1]);
        let wiped = wiped.unwrap();
        let mut live = full_domains(&wiped);
        let mut stats = SearchStats::default();
        assert!(matches!(
            ac3(&wiped, &mut live, &mut stats),
            Ac3Outcome::Wipeout(_)
        ));
    }

    #[test]
    fn ac3_leaves_consistent_networks_alone() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0), (0, 1), (1, 0), (1, 1)])
            .unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()].len(), 2);
        assert_eq!(live[b.index()].len(), 2);
        assert_eq!(stats.prunings, 0);
    }
}
