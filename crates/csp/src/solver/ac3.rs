//! AC-3 arc-consistency preprocessing.
//!
//! Not part of the paper's schemes, but a natural extension: removing values
//! that have no support in a neighbouring domain before the search starts
//! can only shrink the search tree, never change satisfiability.
//!
//! The revise step runs on the compiled kernel: "does value `a` of `x` have
//! support among the live values of `y`?" is `support_row(a) & live(y) != 0`
//! — a handful of word-ANDs — with the kernel's precomputed full-domain
//! support counts answering it in O(1) while `y` is unpruned.

use super::SearchStats;
use crate::bitset::{BitDomains, BitKernel};
use crate::network::{ConstraintNetwork, VarId};
use crate::Value;
use std::collections::VecDeque;

/// Result of running AC-3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ac3Outcome {
    /// Every remaining value has support in every neighbouring domain.
    Consistent,
    /// Some variable's domain was emptied; the network is unsatisfiable.
    Wipeout(VarId),
}

/// Makes `live` (the per-variable candidate lists) arc consistent with
/// respect to every constraint of the network.
///
/// Returns [`Ac3Outcome::Wipeout`] as soon as a domain becomes empty.
/// Pruning counts and consistency checks are recorded in `stats`.
///
/// Convenience wrapper over [`ac3_kernel`] for callers holding candidate
/// index lists; the lists come back in ascending index order.  On a
/// mask-based restricted view the restriction mask is intersected in
/// first, so masked-off values are neither kept nor counted as supports.
pub fn ac3<V: Value>(
    network: &ConstraintNetwork<V>,
    live: &mut [Vec<usize>],
    stats: &mut SearchStats,
) -> Ac3Outcome {
    let kernel = network.kernel();
    let mut domains = kernel.masked_domains(network.mask().map(|m| &**m));
    for (v, list) in live.iter().enumerate() {
        domains.restrict_to(VarId::new(v), list);
    }
    let outcome = ac3_kernel(kernel, &mut domains, stats);
    for (v, list) in live.iter_mut().enumerate() {
        *list = domains.live_values(VarId::new(v));
    }
    outcome
}

/// The kernel form of AC-3: makes a word-packed live-domain working set arc
/// consistent with respect to every constraint of the kernel.
///
/// Returns [`Ac3Outcome::Wipeout`] as soon as a domain becomes empty.
pub fn ac3_kernel(
    kernel: &BitKernel,
    live: &mut BitDomains,
    stats: &mut SearchStats,
) -> Ac3Outcome {
    // Work list of directed arcs (x, y, constraint) meaning "revise x
    // against y".
    let mut queue: VecDeque<(VarId, VarId, usize)> = VecDeque::new();
    for ci in 0..kernel.constraint_count() {
        let c = kernel.constraint(ci);
        queue.push_back((c.first(), c.second(), ci));
        queue.push_back((c.second(), c.first(), ci));
    }
    while let Some((x, y, ci)) = queue.pop_front() {
        if revise(kernel, live, x, y, ci, stats) {
            if live.is_empty(x) {
                return Ac3Outcome::Wipeout(x);
            }
            // Re-examine every arc pointing at x (other than from y).
            for edge in kernel.edges(x) {
                if edge.other != y {
                    queue.push_back((edge.other, x, edge.constraint));
                }
            }
        }
    }
    Ac3Outcome::Consistent
}

/// Removes the values of `x` that have no support among the live values of
/// `y` under constraint `ci`; returns whether anything was removed.
fn revise(
    kernel: &BitKernel,
    live: &mut BitDomains,
    x: VarId,
    y: VarId,
    ci: usize,
    stats: &mut SearchStats,
) -> bool {
    let constraint = kernel.constraint(ci);
    let x_is_first = constraint.first() == x;
    let y_count = live.count(y);
    // While y is unpruned, the precomputed full-domain support count
    // decides support without touching y's words at all.
    let y_is_full = y_count == kernel.domain_size(y);
    let x_values = live.live_values(x);
    stats.consistency_checks += (x_values.len() * y_count) as u64;
    let mut removed = 0u64;
    for value in x_values {
        let supported = if y_is_full {
            constraint.full_support(x_is_first, value) > 0
        } else {
            live.intersects(y, constraint.row(x_is_first, value))
        };
        if !supported {
            live.remove(x, value);
            removed += 1;
        }
    }
    stats.prunings += removed;
    removed > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_domains<V: Value>(net: &ConstraintNetwork<V>) -> Vec<Vec<usize>> {
        net.variables()
            .map(|v| (0..net.domain(v).len()).collect())
            .collect()
    }

    #[test]
    fn ac3_prunes_unsupported_values() {
        // a in {0,1,2}, b in {0}; constraint requires a == b, so a must be 0.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1, 2]);
        let b = net.add_variable("b", vec![0]);
        net.add_constraint(a, b, vec![(0, 0)]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()], vec![0]);
        assert_eq!(live[b.index()], vec![0]);
        assert_eq!(stats.prunings, 2);
        assert!(stats.consistency_checks > 0);
    }

    #[test]
    fn ac3_detects_wipeout() {
        // a != b with single-value equal domains: impossible.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0]);
        let b = net.add_variable("b", vec![0]);
        net.add_constraint(a, b, vec![]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        match ac3(&net, &mut live, &mut stats) {
            Ac3Outcome::Wipeout(v) => assert!(v == a || v == b),
            Ac3Outcome::Consistent => panic!("expected a wipeout"),
        }
    }

    #[test]
    fn ac3_propagates_through_a_chain() {
        // a -> b -> c equality chain with c fixed to 1 forces everything to 1.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![1]);
        net.add_constraint(a, b, vec![(0, 0), (1, 1)]).unwrap();
        net.add_constraint(b, c, vec![(1, 1)]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()], vec![1]);
        assert_eq!(live[b.index()], vec![1]);
    }

    #[test]
    fn ac3_respects_restriction_masks() {
        // a == b over {0,1,2}; restricting `a` to {2} must propagate: b's
        // values 0 and 1 lose their (masked-off) supports even though the
        // caller passed full candidate lists.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1, 2]);
        let b = net.add_variable("b", vec![0, 1, 2]);
        net.add_constraint(a, b, vec![(0, 0), (1, 1), (2, 2)])
            .unwrap();
        let view = net.restricted(a, &[2]).unwrap();
        let mut live = full_domains(&view);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&view, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()], vec![2]);
        assert_eq!(live[b.index()], vec![2]);
        // A restriction that wipes the domain out is detected.
        let wiped = net.restricted(a, &[0]).unwrap().restricted(a, &[1]);
        let wiped = wiped.unwrap();
        let mut live = full_domains(&wiped);
        let mut stats = SearchStats::default();
        assert!(matches!(
            ac3(&wiped, &mut live, &mut stats),
            Ac3Outcome::Wipeout(_)
        ));
    }

    #[test]
    fn ac3_leaves_consistent_networks_alone() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0), (0, 1), (1, 0), (1, 1)])
            .unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()].len(), 2);
        assert_eq!(live[b.index()].len(), 2);
        assert_eq!(stats.prunings, 0);
    }
}
