//! AC-3 arc-consistency preprocessing.
//!
//! Not part of the paper's schemes, but a natural extension: removing values
//! that have no support in a neighbouring domain before the search starts
//! can only shrink the search tree, never change satisfiability.

use super::SearchStats;
use crate::network::{ConstraintNetwork, VarId};
use crate::Value;
use std::collections::VecDeque;

/// Result of running AC-3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ac3Outcome {
    /// Every remaining value has support in every neighbouring domain.
    Consistent,
    /// Some variable's domain was emptied; the network is unsatisfiable.
    Wipeout(VarId),
}

/// Makes `live` (the per-variable candidate lists) arc consistent with
/// respect to every constraint of the network.
///
/// Returns [`Ac3Outcome::Wipeout`] as soon as a domain becomes empty.
/// Pruning counts and consistency checks are recorded in `stats`.
pub fn ac3<V: Value>(
    network: &ConstraintNetwork<V>,
    live: &mut [Vec<usize>],
    stats: &mut SearchStats,
) -> Ac3Outcome {
    // Work list of directed arcs (x, y) meaning "revise x against y".
    let mut queue: VecDeque<(VarId, VarId)> = VecDeque::new();
    for c in network.constraints() {
        queue.push_back((c.first(), c.second()));
        queue.push_back((c.second(), c.first()));
    }
    while let Some((x, y)) = queue.pop_front() {
        if revise(network, live, x, y, stats) {
            if live[x.index()].is_empty() {
                return Ac3Outcome::Wipeout(x);
            }
            // Re-examine every arc pointing at x (other than from y).
            for &ci in network.constraints_of(x) {
                let c = &network.constraints()[ci];
                let z = c.other(x).expect("adjacency is consistent");
                if z != y {
                    queue.push_back((z, x));
                }
            }
        }
    }
    Ac3Outcome::Consistent
}

/// Removes the values of `x` that have no support among the live values of
/// `y`; returns whether anything was removed.
fn revise<V: Value>(
    network: &ConstraintNetwork<V>,
    live: &mut [Vec<usize>],
    x: VarId,
    y: VarId,
    stats: &mut SearchStats,
) -> bool {
    let Some(constraint) = network.constraint_between(x, y) else {
        return false;
    };
    let y_values = live[y.index()].clone();
    let before = live[x.index()].len();
    stats.consistency_checks += (before * y_values.len()) as u64;
    live[x.index()].retain(|&xv| constraint.has_support(x, xv, &y_values));
    let removed = before - live[x.index()].len();
    stats.prunings += removed as u64;
    removed > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_domains<V: Value>(net: &ConstraintNetwork<V>) -> Vec<Vec<usize>> {
        net.variables()
            .map(|v| (0..net.domain(v).len()).collect())
            .collect()
    }

    #[test]
    fn ac3_prunes_unsupported_values() {
        // a in {0,1,2}, b in {0}; constraint requires a == b, so a must be 0.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1, 2]);
        let b = net.add_variable("b", vec![0]);
        net.add_constraint(a, b, vec![(0, 0)]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()], vec![0]);
        assert_eq!(live[b.index()], vec![0]);
        assert_eq!(stats.prunings, 2);
        assert!(stats.consistency_checks > 0);
    }

    #[test]
    fn ac3_detects_wipeout() {
        // a != b with single-value equal domains: impossible.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0]);
        let b = net.add_variable("b", vec![0]);
        net.add_constraint(a, b, vec![]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        match ac3(&net, &mut live, &mut stats) {
            Ac3Outcome::Wipeout(v) => assert!(v == a || v == b),
            Ac3Outcome::Consistent => panic!("expected a wipeout"),
        }
    }

    #[test]
    fn ac3_propagates_through_a_chain() {
        // a -> b -> c equality chain with c fixed to 1 forces everything to 1.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![1]);
        net.add_constraint(a, b, vec![(0, 0), (1, 1)]).unwrap();
        net.add_constraint(b, c, vec![(1, 1)]).unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()], vec![1]);
        assert_eq!(live[b.index()], vec![1]);
    }

    #[test]
    fn ac3_leaves_consistent_networks_alone() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0), (0, 1), (1, 0), (1, 1)])
            .unwrap();
        let mut live = full_domains(&net);
        let mut stats = SearchStats::default();
        assert_eq!(ac3(&net, &mut live, &mut stats), Ac3Outcome::Consistent);
        assert_eq!(live[a.index()].len(), 2);
        assert_eq!(live[b.index()].len(), 2);
        assert_eq!(stats.prunings, 0);
    }
}
