//! Parallel portfolio search: racing and sharding solvers across threads
//! with thread-count-independent results.
//!
//! Two portfolio shapes live here, both built on the shared
//! [`WorkerPool`]:
//!
//! * [`ParallelPortfolioSearch`] — a **satisfiability race**: diverse
//!   members (distinct schemes, orderings and restart seeds) search the
//!   same network concurrently.  The portfolio's answer is the solution of
//!   the *lowest-index* member that finds one, so every member with a
//!   smaller index runs to completion before the race is decided and the
//!   winner never depends on timing.  Members above a solution-bearing
//!   index are cancelled cooperatively ([`CancelToken`]).
//! * [`ParallelBranchAndBound`] — a **weighted optimization portfolio**:
//!   one *primary* exhaustive branch-and-bound plus helper members (domain
//!   shards, reshuffled orders, local-search primal probes) that publish
//!   every solution they find to a [`SharedIncumbent`].  The primary prunes
//!   against the shared bound — strictly, so subtrees that could tie are
//!   always explored — and its first optimal solution in depth-first order
//!   is provably independent of *when* foreign bounds arrive.  Helpers are
//!   cancelled the moment the primary completes: the cooperative-pruning
//!   speedup does not even require extra CPU cores, because a helper that
//!   stumbles on a near-optimal solution early lets the primary skip the
//!   bulk of its tree.
//!
//! # Determinism contract
//!
//! For a fixed seed and fixed limits, both portfolios return **the same
//! solution and the same cost at any thread count** (1, 2, 8, ...),
//! provided the search *completes within its budgets* — no wall-clock
//! deadline fires and no node limit truncates the primary (check
//! [`OptimizeResult::is_exhaustive`] /
//! [`SolveResult::hit_any_limit`](super::SolveResult::hit_any_limit)) —
//! and all pair weights are exactly representable sums (integers, or
//! integers scaled by a dyadic factor such as the layout crate's 1.25
//! bonus).  A truncated run returns whatever was best when the budget ran
//! out, and *which* nodes fit in the budget depends on when foreign
//! bounds arrived, so truncated results are best-effort at any thread
//! count (exactly like deadline-cut results).  Search *statistics*
//! (nodes, prunings) always vary with the thread count — they reflect the
//! work actually performed, which cooperative pruning reduces.  This
//! contract is what lets a CI perf gate diff solution costs across thread
//! counts while tracking wall-clock speedups.

use super::pool::WorkerPool;
use super::{NetworkSearch, Scheme, SearchEngine, SearchLimits, SearchStats, SolveResult};
use crate::assignment::Assignment;
use crate::network::ConstraintNetwork;
use crate::solver::MinConflicts;
use crate::weighted::{BnbOrder, BranchAndBound, Coop, OptimizeResult, WeightedNetwork};
use crate::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long result-collection loops sleep on an empty channel before
/// helping the pool run queued jobs (keeps nested submissions live).
const COLLECT_POLL: Duration = Duration::from_micros(200);

/// A shared flag that cooperatively aborts in-flight searches.
///
/// Cloning shares the flag.  Solvers poll it at their deadline-poll points
/// (every few dozen nodes), so cancellation latency is microseconds, not
/// milliseconds.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every solver sharing the token aborts at its
    /// next poll point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A callback invoked every time a [`SharedIncumbent`] bound rises — the
/// subscription seam an async serving layer streams improving solution
/// weights through.
///
/// The callback runs on whichever solver thread raised the bound, so it
/// must be cheap and non-blocking (post to a channel, update an atomic);
/// it must never call back into the solver.  Under racing raises the
/// callbacks may arrive out of order — subscribers keep their own running
/// maximum.  Observation never changes what the solvers compute: the
/// bound itself is raised by the same `fetch_max` with or without an
/// observer attached.
#[derive(Clone)]
pub struct IncumbentObserver(Arc<dyn Fn(f64) + Send + Sync>);

impl IncumbentObserver {
    /// Wraps a callback to be invoked with every new best weight.
    pub fn new(callback: impl Fn(f64) + Send + Sync + 'static) -> Self {
        IncumbentObserver(Arc::new(callback))
    }

    /// Invokes the callback.
    pub fn notify(&self, weight: f64) {
        (self.0)(weight);
    }
}

impl std::fmt::Debug for IncumbentObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("IncumbentObserver(..)")
    }
}

/// A monotonically increasing `f64` maximum shared between portfolio
/// members (the branch-and-bound incumbent bound).
///
/// Lock-free: values are stored as order-preserving bit patterns, so
/// raising the maximum is a single `fetch_max`.  An optional
/// [`IncumbentObserver`] ([`SharedIncumbent::observed`]) is notified after
/// every successful raise.
#[derive(Debug)]
pub struct SharedIncumbent {
    key: AtomicU64,
    observer: Option<IncumbentObserver>,
}

/// Maps an `f64` to a `u64` whose unsigned order matches the `f64` order
/// (sign bit flipped for positives, all bits flipped for negatives).
fn f64_order_key(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`f64_order_key`].
fn f64_from_order_key(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

impl Default for SharedIncumbent {
    fn default() -> Self {
        SharedIncumbent::new()
    }
}

impl SharedIncumbent {
    /// A fresh incumbent at negative infinity (no solution known).
    pub fn new() -> Self {
        SharedIncumbent {
            key: AtomicU64::new(f64_order_key(f64::NEG_INFINITY)),
            observer: None,
        }
    }

    /// A fresh incumbent whose raises are reported to `observer`.
    pub fn observed(observer: IncumbentObserver) -> Self {
        SharedIncumbent {
            observer: Some(observer),
            ..SharedIncumbent::new()
        }
    }

    /// A fresh incumbent with an optional observer (`None` behaves exactly
    /// like [`SharedIncumbent::new`]).
    pub fn maybe_observed(observer: Option<IncumbentObserver>) -> Self {
        SharedIncumbent {
            observer,
            ..SharedIncumbent::new()
        }
    }

    /// Offers a solution weight; the stored maximum only ever rises.
    /// Returns `true` when the offer raised the bound.
    pub fn offer(&self, weight: f64) -> bool {
        let key = f64_order_key(weight);
        let raised = self.key.fetch_max(key, Ordering::AcqRel) < key;
        if raised {
            if let Some(observer) = &self.observer {
                observer.notify(weight);
            }
        }
        raised
    }

    /// The best weight offered so far (`-inf` when none).
    pub fn get(&self) -> f64 {
        f64_from_order_key(self.key.load(Ordering::Acquire))
    }
}

/// Derives member seed `index` from a base seed (SplitMix64-style mixing,
/// so neighbouring indices get unrelated streams).
pub(crate) fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One competitor in a satisfiability race.
#[derive(Debug, Clone)]
pub enum PortfolioMember {
    /// A systematic depth-first search (can prove unsatisfiability).
    Systematic(SearchEngine),
    /// Min-conflicts local search (fast on large satisfiable networks,
    /// proves nothing when it fails).
    LocalSearch(MinConflicts),
}

impl PortfolioMember {
    /// Whether a completed, unlimited run without a solution proves the
    /// network unsatisfiable.
    pub fn is_systematic(&self) -> bool {
        matches!(self, PortfolioMember::Systematic(_))
    }

    /// A short human label for reports.
    pub fn label(&self) -> String {
        match self {
            PortfolioMember::Systematic(engine) => format!(
                "systematic({:?}/{:?}{})",
                engine.variable_ordering,
                engine.value_ordering,
                if engine.forward_checking { "+fc" } else { "" }
            ),
            PortfolioMember::LocalSearch(_) => "local-search".to_string(),
        }
    }

    /// Runs this member with its own seeded RNG, merged limits and a cancel
    /// token.
    fn solve<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        seed: u64,
        limits: &SearchLimits,
        cancel: &CancelToken,
    ) -> SolveResult<V> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            PortfolioMember::Systematic(engine) => {
                // The tighter of the member's own cap and the request's.
                let merged = SearchLimits {
                    node_limit: match (limits.node_limit, engine.node_limit) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    },
                    deadline: limits.deadline,
                };
                engine.solve_cancellable(network, &mut rng, &merged, cancel)
            }
            PortfolioMember::LocalSearch(config) => {
                config.solve_cancellable(network, &mut rng, limits, cancel)
            }
        }
    }
}

/// What one portfolio run did, beyond the merged [`SolveResult`].
#[derive(Debug, Clone)]
pub struct PortfolioReport<V> {
    /// The merged result (the winner's solution, everyone's counters).
    pub result: SolveResult<V>,
    /// Index of the member whose solution was returned.
    pub winner: Option<usize>,
    /// Members that ran to completion.
    pub members_completed: usize,
    /// Members aborted by cooperative cancellation.
    pub members_cancelled: usize,
    /// Members never launched because the race was already decided.
    pub members_skipped: usize,
}

/// A portfolio of diverse solvers racing on one network.
///
/// See the [module documentation](self) for the determinism contract.  Use
/// [`ParallelPortfolioSearch::with_pool`] to share one [`WorkerPool`]
/// across many solves (and with `mlo-core`'s batch machinery); without a
/// pool, or with `parallelism(1)`, members run sequentially in index order
/// — by construction this produces the identical solution.
#[derive(Debug, Clone)]
pub struct ParallelPortfolioSearch {
    members: Vec<PortfolioMember>,
    parallelism: Option<usize>,
    pool: Option<Arc<WorkerPool>>,
    cancel: Option<CancelToken>,
}

impl Default for ParallelPortfolioSearch {
    fn default() -> Self {
        ParallelPortfolioSearch::diverse(4)
    }
}

impl ParallelPortfolioSearch {
    /// A portfolio of the given members (an empty list gets the enhanced
    /// scheme as its sole member).
    pub fn new(mut members: Vec<PortfolioMember>) -> Self {
        if members.is_empty() {
            members.push(PortfolioMember::Systematic(SearchEngine::with_scheme(
                Scheme::Enhanced,
            )));
        }
        ParallelPortfolioSearch {
            members,
            parallelism: None,
            pool: None,
            cancel: None,
        }
    }

    /// The canonical diverse portfolio: the three deterministic schemes
    /// (enhanced, forward checking, full propagation) followed by
    /// `randomized` node-capped base-scheme members with distinct seeds and
    /// one local-search member.
    ///
    /// Member 0 (enhanced, uncapped) guarantees completeness: whatever the
    /// random members do, the portfolio still proves satisfiability or
    /// unsatisfiability.
    pub fn diverse(randomized: usize) -> Self {
        let mut members = vec![
            PortfolioMember::Systematic(SearchEngine::with_scheme(Scheme::Enhanced)),
            PortfolioMember::Systematic(SearchEngine::with_scheme(Scheme::ForwardChecking)),
            PortfolioMember::Systematic(SearchEngine::with_scheme(Scheme::FullPropagation)),
        ];
        for _ in 0..randomized {
            members.push(PortfolioMember::Systematic(
                SearchEngine::with_scheme(Scheme::Base).node_limit(250_000),
            ));
        }
        if randomized > 0 {
            members.push(PortfolioMember::LocalSearch(MinConflicts::default()));
        }
        ParallelPortfolioSearch::new(members)
    }

    /// Shares a worker pool (enables the parallel path).
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Caps the members in flight at once (default: the pool's thread
    /// count; `1` forces the sequential path).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = Some(parallelism.max(1));
        self
    }

    /// Attaches an external cancellation token: when it fires, every
    /// in-flight member aborts at its next cooperative poll and the merged
    /// result comes back with `cancelled` set (and no solution unless a
    /// member had already won).
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The members, in race order.
    pub fn members(&self) -> &[PortfolioMember] {
        &self.members
    }

    fn effective_parallelism(&self) -> usize {
        self.parallelism
            .unwrap_or_else(|| self.pool.as_ref().map_or(1, |p| p.threads()))
            .clamp(1, self.members.len())
    }

    /// Races the members and returns the merged result plus portfolio
    /// bookkeeping.  The caller's RNG seeds every member (one draw), so
    /// identical RNG states replay identical portfolios.
    pub fn solve_detailed<V: Value + Send + Sync + 'static>(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
    ) -> PortfolioReport<V> {
        let base_seed: u64 = rng.gen();
        match (&self.pool, self.effective_parallelism()) {
            (Some(pool), parallelism) if parallelism > 1 => {
                self.race_parallel(network, base_seed, limits, pool, parallelism)
            }
            _ => self.race_sequential(network, base_seed, limits),
        }
    }

    /// The sequential reference semantics: members run in index order; the
    /// first to find a solution (or prove unsatisfiability) ends the race.
    fn race_sequential<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        base_seed: u64,
        limits: &SearchLimits,
    ) -> PortfolioReport<V> {
        let start = Instant::now();
        let mut stats = SearchStats::default();
        let mut hit_node_limit = false;
        let mut hit_deadline = false;
        let mut completed = 0usize;
        let mut cancelled_members = 0usize;
        // The external token (a fresh, never-fired one when the caller
        // attached none) is handed straight to every member.
        let external = self.cancel.clone().unwrap_or_default();
        for (index, member) in self.members.iter().enumerate() {
            let result = member.solve(
                network,
                mix_seed(base_seed, index as u64),
                limits,
                &external,
            );
            stats.absorb(&result.stats);
            let was_cancelled = result.cancelled;
            if was_cancelled {
                cancelled_members += 1;
            } else {
                completed += 1;
            }
            let decided = result.solution.is_some()
                || (member.is_systematic() && result.proves_unsatisfiable());
            hit_node_limit |= result.hit_node_limit;
            hit_deadline |= result.hit_deadline;
            if decided || result.hit_deadline || was_cancelled {
                let winner = result.solution.is_some().then_some(index);
                let proof = member.is_systematic() && result.proves_unsatisfiable();
                return PortfolioReport {
                    result: SolveResult {
                        solution: result.solution,
                        stats,
                        elapsed: start.elapsed(),
                        hit_node_limit: if proof { false } else { hit_node_limit },
                        hit_deadline,
                        cancelled: was_cancelled,
                    },
                    winner,
                    members_completed: completed,
                    members_cancelled: cancelled_members,
                    members_skipped: self.members.len() - completed - cancelled_members,
                };
            }
        }
        PortfolioReport {
            result: SolveResult {
                solution: None,
                stats,
                elapsed: start.elapsed(),
                hit_node_limit,
                hit_deadline,
                cancelled: false,
            },
            winner: None,
            members_completed: completed,
            members_cancelled: cancelled_members,
            members_skipped: 0,
        }
    }

    /// The parallel race.  Invariant that guarantees determinism: a member
    /// is only ever cancelled when some *lower-index* member has reported a
    /// solution, so every member at or below the eventual winner runs
    /// exactly as it would alone.
    fn race_parallel<V: Value + Send + Sync + 'static>(
        &self,
        network: &ConstraintNetwork<V>,
        base_seed: u64,
        limits: &SearchLimits,
        pool: &Arc<WorkerPool>,
        parallelism: usize,
    ) -> PortfolioReport<V> {
        let start = Instant::now();
        // Networks are Arc-backed: every member's handle shares the caller's
        // storage (a clone is one reference-count bump, not a table copy).
        let shared = network.clone();
        let member_count = self.members.len();
        let (tx, rx) = channel::<(usize, SolveResult<V>)>();
        let tokens: Vec<CancelToken> = (0..member_count).map(|_| CancelToken::new()).collect();
        let mut results: Vec<Option<SolveResult<V>>> = (0..member_count).map(|_| None).collect();
        let mut launched = vec![false; member_count];
        let mut in_flight = 0usize;
        let mut next = 0usize;
        let mut best_winner: Option<usize> = None;
        let mut unsat_proven = false;
        let mut our_deadline_hit = false;
        let mut externally_cancelled = false;

        let launch = |index: usize, in_flight: &mut usize, launched: &mut Vec<bool>| {
            let member = self.members[index].clone();
            let network = shared.clone();
            let seed = mix_seed(base_seed, index as u64);
            let limits = *limits;
            let token = tokens[index].clone();
            let tx = tx.clone();
            launched[index] = true;
            *in_flight += 1;
            pool.execute(move || {
                let result = member.solve(&network, seed, &limits, &token);
                // The collector may have returned already; a closed channel
                // just means nobody needs this result any more.
                let _ = tx.send((index, result));
            });
        };

        // Launch the initial window, strictly in index order.
        while next < member_count && in_flight < parallelism {
            launch(next, &mut in_flight, &mut launched);
            next += 1;
        }

        loop {
            // Decided? The winner is final once every lower member finished
            // (without a solution, by minimality).
            if let Some(winner) = best_winner {
                if results[..winner].iter().all(Option::is_some) {
                    break;
                }
            }
            if unsat_proven {
                break;
            }
            if in_flight == 0 && (next >= member_count || best_winner.is_some()) {
                break;
            }
            if let Some(deadline) = limits.deadline {
                if Instant::now() >= deadline {
                    our_deadline_hit = true;
                    break;
                }
            }
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                externally_cancelled = true;
                break;
            }
            match rx.recv_timeout(COLLECT_POLL) {
                Ok((index, result)) => {
                    in_flight -= 1;
                    if result.solution.is_some() && best_winner.is_none_or(|w| index < w) {
                        best_winner = Some(index);
                        // The race below `index` is still open; everything
                        // above it is now irrelevant.
                        for (j, token) in tokens.iter().enumerate() {
                            if j > index && launched[j] && results[j].is_none() {
                                token.cancel();
                            }
                        }
                    } else if self.members[index].is_systematic() && result.proves_unsatisfiable() {
                        unsat_proven = true;
                    }
                    results[index] = Some(result);
                    // Refill the window; members beyond a known winner are
                    // skipped, not launched-and-cancelled.
                    while next < member_count
                        && in_flight < parallelism
                        && best_winner.is_none_or(|w| next < w)
                    {
                        launch(next, &mut in_flight, &mut launched);
                        next += 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Keep queued jobs moving even when every worker is
                    // blocked on a nested wait.
                    pool.help_run_one();
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // No further launches can happen: drop the collector's own sender
        // so that if every remaining job dies without reporting (a panicked
        // worker), the drain sees `Disconnected` instead of spinning.
        drop(tx);
        // Cancel whatever is still running and drain it: cancelled members
        // abort within one poll interval, so this is quick, and it
        // guarantees no portfolio job outlives the call.
        for (j, token) in tokens.iter().enumerate() {
            if launched[j] && results[j].is_none() {
                token.cancel();
            }
        }
        drain_in_flight(&rx, &mut in_flight, pool, |index, result| {
            results[index] = Some(result)
        });

        let mut stats = SearchStats::default();
        let mut hit_node_limit = false;
        let mut hit_deadline = our_deadline_hit;
        let mut completed = 0usize;
        let mut cancelled = 0usize;
        for result in results.iter().flatten() {
            stats.absorb(&result.stats);
            if result.cancelled {
                cancelled += 1;
            } else {
                completed += 1;
            }
            hit_node_limit |= result.hit_node_limit;
            hit_deadline |= result.hit_deadline;
        }
        let solution = best_winner
            .and_then(|w| results[w].take())
            .and_then(|r| r.solution);
        PortfolioReport {
            result: SolveResult {
                solution,
                stats,
                elapsed: start.elapsed(),
                hit_node_limit: if unsat_proven { false } else { hit_node_limit },
                hit_deadline: if unsat_proven { false } else { hit_deadline },
                cancelled: externally_cancelled,
            },
            winner: best_winner,
            members_completed: completed,
            members_cancelled: cancelled,
            members_skipped: launched.iter().filter(|&&l| !l).count(),
        }
    }
}

impl<V: Value + Send + Sync + 'static> NetworkSearch<V> for ParallelPortfolioSearch {
    fn search(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
    ) -> SolveResult<V> {
        self.solve_detailed(network, rng, limits).result
    }
}

/// Receives outstanding `(index, result)` messages, helping the pool while
/// waiting so queued jobs cannot starve behind blocked workers.
fn drain_in_flight<T>(
    rx: &Receiver<(usize, T)>,
    in_flight: &mut usize,
    pool: &WorkerPool,
    mut sink: impl FnMut(usize, T),
) {
    while *in_flight > 0 {
        match rx.recv_timeout(COLLECT_POLL) {
            Ok((index, result)) => {
                sink(index, result);
                *in_flight -= 1;
            }
            Err(RecvTimeoutError::Timeout) => {
                pool.help_run_one();
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// A helper member of a [`ParallelBranchAndBound`] portfolio.
#[derive(Debug, Clone)]
enum WeightedHelper<V> {
    /// Exhaustive search of a domain shard (or a reshuffled full space).
    /// The network is a cheap Arc-backed handle: shards share every table
    /// the restriction does not touch with the parent network.
    Explore {
        solver: BranchAndBound,
        network: WeightedNetwork<V>,
    },
    /// A min-conflicts primal probe on the hard network: any solution it
    /// finds seeds the shared bound.
    Probe { seed: u64 },
    /// A weight-guided greedy probe: assigns each variable the consistent
    /// value with the best (gained + optimistic) weight, restarting with
    /// shuffled orders.  On weight-structured instances this lands near the
    /// optimum in microseconds, which is where most of the portfolio's
    /// pruning power comes from.
    Greedy { seed: u64, restarts: usize },
}

/// Runs the weight-guided greedy probe, offering every complete solution's
/// canonical weight to the shared incumbent.  Every weight is a dense
/// [`WeightKernel`](crate::WeightKernel) read — no hash probe.
fn greedy_probe<V: Value>(
    weighted: &WeightedNetwork<V>,
    seed: u64,
    restarts: usize,
    incumbent: &SharedIncumbent,
    cancel: &CancelToken,
) -> SearchStats {
    use rand::seq::SliceRandom;
    let network = weighted.network();
    let mut stats = SearchStats::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<_> = network.variables().collect();
    // First pass: most-constrained first; later passes: shuffled.
    order.sort_by_key(|&v| std::cmp::Reverse(network.constraints_of(v).len()));
    // Kernel probes for conflicts; live masks keep a restricted view's
    // dead values out of both the value loop and the optimistic potential.
    let kernel = Arc::clone(network.kernel());
    let weights = Arc::clone(weighted.weight_kernel());
    let domains = kernel.masked_domains(network.mask().map(|m| &**m));
    let live: Vec<Vec<usize>> = network
        .variables()
        .map(|v| domains.live_values(v))
        .collect();
    for restart in 0..restarts.max(1) {
        if cancel.is_cancelled() {
            break;
        }
        if restart > 0 {
            order.shuffle(&mut rng);
        }
        let mut assignment = Assignment::new(network.variable_count());
        let mut complete = true;
        for &var in &order {
            let mut best: Option<(f64, usize)> = None;
            for &value in &live[var.index()] {
                stats.nodes_visited += 1;
                if kernel.conflicts_any(&assignment, var, value, &mut stats.consistency_checks) {
                    continue;
                }
                let mut score = 0.0;
                for edge in kernel.edges(var) {
                    if let Some(other_value) = assignment.get(edge.other) {
                        score += weights.constraint(edge.constraint).oriented(
                            edge.var_is_first,
                            value,
                            other_value,
                        );
                    } else {
                        // Optimistic potential: the best pair this value
                        // still allows on the open constraint (live other
                        // side only); a value with no support at all is
                        // heavily penalized.  One shared implementation
                        // with the weighted value ordering.
                        let potential = crate::solver::ordering::best_live_weight(
                            &kernel, &weights, &domains, edge, value,
                        );
                        score += if potential.is_finite() {
                            potential
                        } else {
                            crate::solver::ordering::UNSUPPORTED_PENALTY
                        };
                    }
                }
                if best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, value));
                }
            }
            match best {
                Some((_, value)) => assignment.assign(var, value),
                None => {
                    complete = false;
                    stats.backtracks += 1;
                    break;
                }
            }
        }
        if complete && assignment.is_complete() {
            incumbent.offer(weighted.assignment_weight(&assignment));
        }
    }
    stats
}

/// What a weighted-portfolio helper reports back (counters only — the
/// helpers' solutions live on in the [`SharedIncumbent`], never in the
/// merged result).
struct HelperOutcome {
    stats: SearchStats,
}

/// Result of a weighted portfolio run.
#[derive(Debug, Clone)]
pub struct WeightedPortfolioReport<V> {
    /// The merged optimization result: the primary's solution, everyone's
    /// counters.
    pub result: OptimizeResult<V>,
    /// The canonically recomputed weight of the returned solution
    /// ([`WeightedNetwork::assignment_weight`]); this is the value a perf
    /// gate should diff across thread counts.
    pub canonical_weight: Option<f64>,
    /// Helpers that ran (fully or until cancelled).
    pub helpers_run: usize,
    /// Whether the primary explored (or soundly pruned) its whole tree, so
    /// the result is the proven optimum.
    pub optimal: bool,
}

/// Portfolio branch and bound over a weighted network: one exhaustive
/// primary plus bound-feeding helpers (shards, reshuffles, probes).
///
/// The returned solution is always the primary's, and the primary's answer
/// is independent of helper timing (see the [module docs](self)), so runs
/// at different thread counts return identical solutions and weights.  The
/// helpers' contribution is *wall-clock*: their early incumbents let the
/// primary prune — on satisfiable instances this routinely turns hours of
/// sequential search into seconds, with no extra cores required.
#[derive(Debug, Clone)]
pub struct ParallelBranchAndBound {
    /// The exhaustive primary search (its limits, its ordering).
    pub primary: BranchAndBound,
    /// Number of domain shards of the widest variable to explore as
    /// helpers.
    pub shards: usize,
    /// Number of full-space helpers with seeded-shuffle orderings.
    pub reorders: usize,
    /// Number of min-conflicts primal probes.
    pub probes: usize,
    /// Number of weight-guided greedy probes (run first: they seed the
    /// shared bound almost instantly).
    pub greedy_probes: usize,
    /// Base seed for shuffles and probes.
    pub seed: u64,
    /// Node budget for the adaptive sequential probe: before fanning out,
    /// the primary runs alone under this budget, and only instances that
    /// exhaust it pay for parallel dispatch (`0` disables the probe).  This
    /// is the same adaptivity `mlo-core` strategies apply, pushed down so
    /// every caller gets it.
    pub parallel_threshold: u64,
    parallelism: Option<usize>,
    pool: Option<Arc<WorkerPool>>,
    cancel: Option<CancelToken>,
    observer: Option<IncumbentObserver>,
}

impl Default for ParallelBranchAndBound {
    fn default() -> Self {
        ParallelBranchAndBound {
            primary: BranchAndBound::new(),
            shards: 2,
            reorders: 1,
            probes: 1,
            greedy_probes: 1,
            seed: 0xC0FFEE,
            parallel_threshold: 50_000,
            parallelism: None,
            pool: None,
            cancel: None,
            observer: None,
        }
    }
}

impl ParallelBranchAndBound {
    /// A portfolio around the given primary search.
    pub fn new(primary: BranchAndBound) -> Self {
        ParallelBranchAndBound {
            primary,
            ..ParallelBranchAndBound::default()
        }
    }

    /// Shares a worker pool (enables the parallel path).
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Caps concurrently running members, primary included (default: the
    /// pool's thread count; `1` degenerates to the plain primary search —
    /// the single-thread baseline a perf gate compares against).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = Some(parallelism.max(1));
        self
    }

    /// Sets the base seed for shuffled helpers and probes.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sequential-probe node budget (`0` disables the probe and
    /// always fans out).
    pub fn parallel_threshold(mut self, threshold: u64) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Enables or disables weighted bound-consistency propagation
    /// ([`crate::solver::SoftAc3`]) in the primary, the sequential probe
    /// and every exploring helper (all clone the primary; on by default).
    /// The flag trades nodes for propagation work only — the reported
    /// optimum and its weight are bit-identical either way.
    pub fn propagation(mut self, on: bool) -> Self {
        self.primary.propagate = on;
        self
    }

    /// Attaches an external cancellation token: the primary (and the
    /// sequential probe) aborts at its next poll point once the token
    /// fires, coming back with `cancelled` set on the result.  Helpers are
    /// torn down through the portfolio's own race token as usual.
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Subscribes an observer to the run's [`SharedIncumbent`]: every
    /// raise of the best-known solution weight — by the primary, a helper
    /// or the sequential probe — is reported.  Observation never changes
    /// the computed result.
    pub fn observe_incumbent(mut self, observer: IncumbentObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    fn effective_parallelism(&self) -> usize {
        self.parallelism
            .unwrap_or_else(|| self.pool.as_ref().map_or(1, |p| p.threads()))
            .max(1)
    }

    /// Builds the helper roster for one network.
    fn helpers<V: Value>(&self, weighted: &WeightedNetwork<V>) -> Vec<WeightedHelper<V>> {
        let mut helpers = Vec::new();
        let network = weighted.network();
        // Greedy probes first: they finish in microseconds and their bound
        // is what everything else prunes against.
        for i in 0..self.greedy_probes {
            helpers.push(WeightedHelper::Greedy {
                seed: mix_seed(self.seed, 0x62EED + i as u64),
                restarts: 4,
            });
        }
        // Shard the widest domain: one helper per contiguous value block.
        if self.shards > 1 && network.variable_count() > 0 {
            let widest = network
                .variables()
                .max_by_key(|&v| network.domain(v).len())
                .expect("non-empty network");
            let width = network.domain(widest).len();
            let shards = self.shards.min(width.max(1));
            if shards > 1 {
                let indices: Vec<usize> = (0..width).collect();
                for block in 0..shards {
                    let lo = block * width / shards;
                    let hi = ((block + 1) * width / shards).min(width);
                    if lo >= hi {
                        continue;
                    }
                    if let Ok(restricted) = weighted.restricted(widest, &indices[lo..hi]) {
                        helpers.push(WeightedHelper::Explore {
                            solver: self.primary.clone(),
                            network: restricted,
                        });
                    }
                }
            }
        }
        for i in 0..self.reorders {
            helpers.push(WeightedHelper::Explore {
                solver: self
                    .primary
                    .clone()
                    .order(BnbOrder::Shuffled(mix_seed(self.seed, 0x5AD + i as u64))),
                network: weighted.clone(),
            });
        }
        for i in 0..self.probes {
            helpers.push(WeightedHelper::Probe {
                seed: mix_seed(self.seed, 0x9B0 + i as u64),
            });
        }
        helpers
    }

    /// Runs the portfolio and returns the merged result plus bookkeeping.
    pub fn optimize_detailed<V: Value + Send + Sync + 'static>(
        &self,
        weighted: &WeightedNetwork<V>,
        limits: &SearchLimits,
    ) -> WeightedPortfolioReport<V> {
        let parallelism = self.effective_parallelism();
        let (pool, parallel) = match &self.pool {
            Some(pool) if parallelism > 1 => (Some(Arc::clone(pool)), true),
            _ => (None, false),
        };
        // External hooks: an observed incumbent (fed by every path, so
        // subscribers see streaming bounds even on sequential runs) and the
        // caller's cancellation token.  Without hooks the Coop is empty and
        // the sequential paths below are bit-identical to the plain primary
        // search, statistics included.
        let hook_incumbent = self
            .observer
            .clone()
            .map(|observer| Arc::new(SharedIncumbent::observed(observer)));
        let hooks = Coop {
            incumbent: hook_incumbent.as_deref(),
            cancel: self.cancel.as_ref(),
        };
        if !parallel {
            // The single-thread baseline: the plain primary search.
            let result = self.primary.optimize_coop(weighted, limits, &hooks);
            return finish_weighted(weighted, result, 0);
        }
        // Adaptive dispatch: easy instances finish inside the sequential
        // probe budget and never pay for parallel dispatch.  Only when the
        // probe exhausts its node budget does the full portfolio launch
        // (the probe's counters are carried over — work done is work
        // reported, attributed exactly once).
        let mut probe_stats = SearchStats::default();
        if self.parallel_threshold > 0
            && limits
                .node_limit
                .is_none_or(|own| own > self.parallel_threshold)
        {
            let probe_limits = SearchLimits {
                node_limit: Some(limits.node_limit.map_or(self.parallel_threshold, |own| {
                    own.min(self.parallel_threshold)
                })),
                deadline: limits.deadline,
            };
            let probe = self.primary.optimize_coop(weighted, &probe_limits, &hooks);
            if !probe.hit_node_limit || probe.cancelled {
                return finish_weighted(weighted, probe, 0);
            }
            probe_stats = probe.stats;
        }
        let pool = pool.expect("parallel path requires a pool");
        let start = Instant::now();
        let incumbent = Arc::new(SharedIncumbent::maybe_observed(self.observer.clone()));
        let cancel = CancelToken::new();
        let external_cancel = self.cancel.clone();
        // A cheap Arc-backed handle — the primary and every probe share the
        // caller's tables instead of receiving deep copies.
        let shared = weighted.clone();
        let helpers = self.helpers(weighted);
        let helper_budget = parallelism.saturating_sub(1).min(helpers.len());
        let (tx, rx) = channel::<(usize, Option<OptimizeResult<V>>, HelperOutcome)>();

        // The primary must always run, so it is submitted first; helpers
        // fill the remaining parallelism slots and exist purely to feed the
        // shared bound early.
        let mut in_flight = 0usize;
        {
            let primary = self.primary.clone();
            let weighted = shared.clone();
            let incumbent = Arc::clone(&incumbent);
            let limits = *limits;
            let tx = tx.clone();
            let external_cancel = external_cancel.clone();
            in_flight += 1;
            pool.execute(move || {
                let coop = Coop {
                    incumbent: Some(&incumbent),
                    cancel: external_cancel.as_ref(),
                };
                let result = primary.optimize_coop(&weighted, &limits, &coop);
                let outcome = HelperOutcome {
                    stats: result.stats,
                };
                let _ = tx.send((0, Some(result), outcome));
            });
        }
        for (offset, helper) in helpers.into_iter().take(helper_budget).enumerate() {
            let index = offset + 1;
            let incumbent = Arc::clone(&incumbent);
            let cancel = cancel.clone();
            let limits = *limits;
            let tx = tx.clone();
            let hard = shared.clone();
            in_flight += 1;
            pool.execute(move || {
                let outcome = match helper {
                    WeightedHelper::Explore { solver, network } => {
                        let coop = Coop {
                            incumbent: Some(&incumbent),
                            cancel: Some(&cancel),
                        };
                        let result = solver.optimize_coop(&network, &limits, &coop);
                        HelperOutcome {
                            stats: result.stats,
                        }
                    }
                    WeightedHelper::Probe { seed } => {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let result = MinConflicts::default().solve_cancellable(
                            hard.network(),
                            &mut rng,
                            &limits,
                            &cancel,
                        );
                        if let Some(solution) = &result.solution {
                            let mut assignment = Assignment::new(hard.network().variable_count());
                            for var in hard.network().variables() {
                                assignment.assign(var, solution.value_index(var));
                            }
                            incumbent.offer(hard.assignment_weight(&assignment));
                        }
                        HelperOutcome {
                            stats: result.stats,
                        }
                    }
                    WeightedHelper::Greedy { seed, restarts } => HelperOutcome {
                        stats: greedy_probe(&hard, seed, restarts, &incumbent, &cancel),
                    },
                };
                let _ = tx.send((index, None, outcome));
            });
        }

        // Everything is submitted: drop the collector's sender so a worker
        // dying without reporting surfaces as `Disconnected` rather than an
        // endless wait.
        drop(tx);
        let mut primary_result: Option<OptimizeResult<V>> = None;
        let mut stats = probe_stats;
        let mut helpers_run = 0usize;
        while in_flight > 0 {
            match rx.recv_timeout(COLLECT_POLL) {
                Ok((index, result, outcome)) => {
                    in_flight -= 1;
                    stats.absorb(&outcome.stats);
                    if index == 0 {
                        primary_result = result;
                        // The race is decided: the primary's answer is the
                        // portfolio's answer.
                        cancel.cancel();
                    } else {
                        helpers_run += 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    pool.help_run_one();
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        let mut result = primary_result.expect("the primary always reports");
        stats.max_depth = stats.max_depth.max(result.stats.max_depth);
        result.stats = stats;
        result.elapsed = start.elapsed();
        finish_weighted(weighted, result, helpers_run)
    }
}

/// Wraps up a weighted run: canonical weight recomputation + report.
fn finish_weighted<V: Value>(
    weighted: &WeightedNetwork<V>,
    result: OptimizeResult<V>,
    helpers_run: usize,
) -> WeightedPortfolioReport<V> {
    let canonical_weight = result.solution.as_ref().map(|solution| {
        let network = weighted.network();
        let mut assignment = Assignment::new(network.variable_count());
        for var in network.variables() {
            assignment.assign(var, solution.value_index(var));
        }
        weighted.assignment_weight(&assignment)
    });
    let optimal = result.is_exhaustive() && result.solution.is_some();
    WeightedPortfolioReport {
        optimal,
        canonical_weight,
        helpers_run,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{satisfiable_network, RandomNetworkSpec};

    fn unsatisfiable_network() -> ConstraintNetwork<i32> {
        let mut net = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![0, 1]);
        let neq = vec![(0, 1), (1, 0)];
        net.add_constraint(a, b, neq.clone()).unwrap();
        net.add_constraint(b, c, neq.clone()).unwrap();
        net.add_constraint(a, c, neq).unwrap();
        net
    }

    #[test]
    fn cancel_token_round_trip() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn shared_incumbent_is_a_monotone_max() {
        let incumbent = SharedIncumbent::new();
        assert_eq!(incumbent.get(), f64::NEG_INFINITY);
        assert!(incumbent.offer(-3.5));
        assert_eq!(incumbent.get(), -3.5);
        assert!(incumbent.offer(2.0));
        assert!(!incumbent.offer(1.0));
        assert!(!incumbent.offer(2.0));
        assert_eq!(incumbent.get(), 2.0);
    }

    #[test]
    fn f64_order_key_preserves_order() {
        let values = [
            f64::NEG_INFINITY,
            -2.5,
            -0.0,
            0.0,
            1.0e-300,
            7.25,
            f64::INFINITY,
        ];
        for pair in values.windows(2) {
            assert!(f64_order_key(pair[0]) <= f64_order_key(pair[1]));
        }
        for v in values {
            assert_eq!(f64_from_order_key(f64_order_key(v)), v);
        }
    }

    #[test]
    fn mix_seed_separates_indices() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(42, 0));
    }

    #[test]
    fn sequential_and_parallel_agree_on_satisfiable_networks() {
        let spec = RandomNetworkSpec {
            variables: 16,
            domain_size: 4,
            density: 0.4,
            tightness: 0.35,
            seed: 11,
        };
        let (net, _) = satisfiable_network(&spec);
        let limits = SearchLimits::none();
        let sequential = ParallelPortfolioSearch::diverse(3).parallelism(1);
        let mut rng = StdRng::seed_from_u64(99);
        let lone = sequential.solve_detailed(&net, &mut rng, &limits);
        let pool = Arc::new(WorkerPool::new(4));
        for threads in [2usize, 4, 8] {
            let racing = ParallelPortfolioSearch::diverse(3)
                .with_pool(Arc::clone(&pool))
                .parallelism(threads);
            let mut rng = StdRng::seed_from_u64(99);
            let report = racing.solve_detailed(&net, &mut rng, &limits);
            assert_eq!(report.winner, lone.winner, "winner at {threads} threads");
            assert_eq!(
                report.result.solution.as_ref().map(|s| s.values().to_vec()),
                lone.result.solution.as_ref().map(|s| s.values().to_vec()),
                "solution at {threads} threads"
            );
        }
    }

    #[test]
    fn portfolio_proves_unsatisfiability() {
        let net = unsatisfiable_network();
        let pool = Arc::new(WorkerPool::new(4));
        let portfolio = ParallelPortfolioSearch::diverse(2).with_pool(pool);
        let mut rng = StdRng::seed_from_u64(1);
        let report = portfolio.solve_detailed(&net, &mut rng, &SearchLimits::none());
        assert!(report.result.solution.is_none());
        assert!(report.result.proves_unsatisfiable());
        assert_eq!(report.winner, None);
    }

    #[test]
    fn deadline_cancels_all_members_promptly() {
        // A large network none of the members can finish instantly, plus an
        // already-expired deadline: the race must come back almost at once
        // with every launched member accounted for (completed or
        // cancelled), which is exactly the no-leaked-work guarantee.
        let spec = RandomNetworkSpec {
            variables: 60,
            domain_size: 6,
            density: 0.3,
            tightness: 0.45,
            seed: 5,
        };
        let (net, _) = satisfiable_network(&spec);
        let pool = Arc::new(WorkerPool::new(4));
        let portfolio = ParallelPortfolioSearch::diverse(4).with_pool(Arc::clone(&pool));
        let limits = SearchLimits::none().with_deadline(Instant::now());
        let mut rng = StdRng::seed_from_u64(3);
        let started = Instant::now();
        let report = portfolio.solve_detailed(&net, &mut rng, &limits);
        assert!(report.result.hit_deadline);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline cancellation took {:?}",
            started.elapsed()
        );
        // After the call returns no portfolio job is still running: a fresh
        // sentinel job gets a worker immediately.
        let (tx, rx) = channel();
        pool.execute(move || tx.send(()).unwrap());
        rx.recv_timeout(Duration::from_secs(5))
            .expect("pool workers were all released");
    }

    fn weighted_instance(seed: u64) -> WeightedNetwork<usize> {
        // The production planted-optimum generator (also what the perf
        // gate runs): bonus 50 dominates the 0..10 noise weights.
        let spec = RandomNetworkSpec {
            variables: 12,
            domain_size: 4,
            density: 0.5,
            tightness: 0.3,
            seed,
        };
        crate::random::planted_weighted_network(&spec, 50.0, 10).0
    }

    #[test]
    fn weighted_portfolio_matches_single_thread_exactly() {
        let weighted = weighted_instance(7);
        let limits = SearchLimits::none();
        let baseline = ParallelBranchAndBound::default()
            .parallelism(1)
            .optimize_detailed(&weighted, &limits);
        assert!(baseline.optimal);
        let pool = Arc::new(WorkerPool::new(4));
        for threads in [2usize, 4, 8] {
            let report = ParallelBranchAndBound::default()
                .with_pool(Arc::clone(&pool))
                .parallelism(threads)
                .optimize_detailed(&weighted, &limits);
            assert!(report.optimal);
            assert_eq!(
                report.canonical_weight, baseline.canonical_weight,
                "weight at {threads} threads"
            );
            assert_eq!(
                report.result.solution.as_ref().map(|s| s.values().to_vec()),
                baseline
                    .result
                    .solution
                    .as_ref()
                    .map(|s| s.values().to_vec()),
                "solution at {threads} threads"
            );
        }
    }

    #[test]
    fn helper_networks_share_storage_with_the_parent() {
        // The portfolio's shards and reshuffles are mask-based views over
        // the caller's tables: every helper shares the *whole* storage
        // (constraint tables, weight tables and the compiled kernel); a
        // shard differs only in its domain mask.
        let weighted = weighted_instance(7);
        let portfolio = ParallelBranchAndBound::default();
        let helpers = portfolio.helpers(&weighted);
        let mut full_space = 0usize;
        let mut shards = 0usize;
        for helper in &helpers {
            let WeightedHelper::Explore { network, .. } = helper else {
                continue;
            };
            assert!(
                network.network().shares_storage(weighted.network()),
                "every helper shares the parent storage"
            );
            assert!(Arc::ptr_eq(
                weighted.network().kernel(),
                network.network().kernel()
            ));
            let total = weighted.network().constraint_count();
            for ci in 0..total {
                assert!(Arc::ptr_eq(
                    weighted.network().constraint_handle(ci),
                    network.network().constraint_handle(ci),
                ));
                assert!(weighted.shares_weight_table(network, ci));
            }
            if network.network().mask().is_some() {
                shards += 1;
            } else {
                full_space += 1;
            }
        }
        assert!(full_space > 0, "reshuffle helpers exist");
        assert!(shards > 0, "shard helpers exist");
    }

    #[test]
    fn weighted_portfolio_runs_helpers() {
        let weighted = weighted_instance(13);
        let pool = Arc::new(WorkerPool::new(4));
        // Threshold 0 disables the sequential probe; an instance this small
        // would otherwise complete inside it and never fan out.
        let report = ParallelBranchAndBound::default()
            .with_pool(pool)
            .parallelism(4)
            .parallel_threshold(0)
            .optimize_detailed(&weighted, &SearchLimits::none());
        assert!(report.helpers_run > 0);
        assert!(report.canonical_weight.is_some());
    }

    #[test]
    fn sequential_probe_skips_the_fan_out_on_small_instances() {
        let weighted = weighted_instance(13);
        let pool = Arc::new(WorkerPool::new(4));
        let probed = ParallelBranchAndBound::default()
            .with_pool(pool)
            .parallelism(4)
            .optimize_detailed(&weighted, &SearchLimits::none());
        assert_eq!(
            probed.helpers_run, 0,
            "an instance under the default threshold completes in the probe"
        );
        // The probe is result-identical to the sequential branch and bound.
        let oracle = BranchAndBound::new().optimize(&weighted);
        assert_eq!(probed.result.best_weight, oracle.best_weight);
    }
}
