//! Search schemes for constraint networks.
//!
//! The paper evaluates two schemes:
//!
//! * the **base scheme** — depth-first search that picks the next variable
//!   and the next value at random and backtracks chronologically,
//! * the **enhanced scheme** — the base scheme improved with (i)
//!   most-constraining variable ordering, (ii) least-constraining value
//!   ordering and (iii) backjumping.
//!
//! Both are instances of one configurable [`SearchEngine`]; the individual
//! improvements can be toggled independently, which is exactly what the
//! Figure 4 ablation needs.  Forward checking and AC-3 preprocessing are
//! provided as extensions beyond the paper.

mod ac3;
mod engine;
mod enumerate;
mod local;
mod ordering;
pub mod pool;
pub mod portfolio;
pub mod soft_ac3;
pub mod steal;

pub use ac3::{ac3, ac3_kernel, Ac3Outcome};
pub use enumerate::{EnumerationResult, Enumerator};
pub use local::MinConflicts;
pub use ordering::{
    best_live_weight, order_values, select_variable, weighted_value_order, ValueOrdering,
    VariableOrdering,
};
pub use pool::{JobPanic, WorkerPool};
pub use portfolio::{
    CancelToken, IncumbentObserver, ParallelPortfolioSearch, PortfolioMember, PortfolioReport,
    SharedIncumbent,
};
pub use soft_ac3::{SoftAc3, SoftMark, Wipeout};
pub use steal::{
    StealCountReport, StealOptimizeReport, StealReport, StealScheduler, StealSolveReport,
};

use crate::assignment::Solution;
use crate::network::ConstraintNetwork;
use crate::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::time::{Duration, Instant};

/// Per-run resource limits, independent of the engine configuration.
///
/// This is the narrow seam callers (notably `mlo-core` strategies) use to
/// impose request-scoped budgets without rebuilding the engine: a node
/// budget, a wall-clock deadline, or both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchLimits {
    /// Abort after visiting this many nodes (`None` = unlimited).
    pub node_limit: Option<u64>,
    /// Abort once this instant passes (`None` = no deadline).
    pub deadline: Option<Instant>,
}

impl SearchLimits {
    /// No limits at all.
    pub fn none() -> Self {
        SearchLimits::default()
    }

    /// Limits with a node budget.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Limits with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The narrow search seam: one entry point every solver backend implements.
///
/// `mlo-core` layout strategies are written against this trait, so custom
/// backends (portfolio solvers, randomized restarts, external SAT bridges)
/// can slot in by implementing a single method.  The caller owns the RNG —
/// identical requests replay identical random orderings — and the limits,
/// so one backend value can serve many differently-budgeted requests.
pub trait NetworkSearch<V: Value> {
    /// Searches `network` for a solution using the caller's RNG and limits.
    fn search(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
    ) -> SolveResult<V>;
}

/// Counters describing a single solver run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Number of variable-value instantiations attempted.
    pub nodes_visited: u64,
    /// Number of dead ends reached (all values of a variable exhausted).
    pub backtracks: u64,
    /// Number of levels skipped thanks to backjumping (0 without it).
    pub backjumps: u64,
    /// Number of individual constraint checks performed.
    pub consistency_checks: u64,
    /// Number of domain values pruned by forward checking / AC-3.  Branch
    /// and bound counts its bound prunes (subtrees cut by the own or shared
    /// incumbent bound) here.
    pub prunings: u64,
    /// Deepest partial-assignment depth reached.
    pub max_depth: usize,
    /// Number of frames taken from another worker's deque by the
    /// work-stealing scheduler (0 for sequential backends).
    pub steals: u64,
    /// Number of frames a scheduler worker carved off its local stack for
    /// idle peers (0 for sequential backends).
    pub splits: u64,
    /// Bytes of kernel memory (live spans, support masks, bit-matrix rows)
    /// touched by AC-3 revisions — the cache-blocking audit metric the perf
    /// gate divides by the revision count.  Only propagation fills it in;
    /// tree-search counters leave it at zero.
    pub bytes_touched: u64,
    /// Number of per-variable soft-AC-3 revise passes (weighted bound
    /// consistency; 0 on unweighted or unpropagated searches).
    pub soft_revisions: u64,
    /// Number of domain values deleted by the soft-AC-3 incumbent bound
    /// (forward-check removals count under neither this nor `prunings`).
    pub bound_deletions: u64,
}

impl SearchStats {
    /// Merges another run's counters into this one (used when restarting).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.backtracks += other.backtracks;
        self.backjumps += other.backjumps;
        self.consistency_checks += other.consistency_checks;
        self.prunings += other.prunings;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.steals += other.steals;
        self.splits += other.splits;
        self.bytes_touched += other.bytes_touched;
        self.soft_revisions += other.soft_revisions;
        self.bound_deletions += other.bound_deletions;
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} backtracks={} backjumps={} checks={} prunings={} max_depth={} steals={} splits={} bytes={} soft_revisions={} bound_deletions={}",
            self.nodes_visited,
            self.backtracks,
            self.backjumps,
            self.consistency_checks,
            self.prunings,
            self.max_depth,
            self.steals,
            self.splits,
            self.bytes_touched,
            self.soft_revisions,
            self.bound_deletions
        )
    }
}

/// The outcome of a solver run.
#[derive(Debug, Clone)]
pub struct SolveResult<V> {
    /// The solution, when one exists (and no limit was hit).
    pub solution: Option<Solution<V>>,
    /// Search counters.
    pub stats: SearchStats,
    /// Wall-clock time spent searching.
    pub elapsed: Duration,
    /// Whether the search was cut off by the node limit before completing.
    pub hit_node_limit: bool,
    /// Whether the search was cut off by the wall-clock deadline.
    pub hit_deadline: bool,
    /// Whether the search was aborted by a [`CancelToken`] (portfolio
    /// members losing the race report this).
    pub cancelled: bool,
}

impl<V: Value> SolveResult<V> {
    /// Whether a solution was found.
    pub fn is_satisfiable(&self) -> bool {
        self.solution.is_some()
    }

    /// Whether the search ended early because a node or time budget ran
    /// out (a `None` solution then proves nothing about satisfiability).
    pub fn hit_any_limit(&self) -> bool {
        self.hit_node_limit || self.hit_deadline
    }

    /// Whether this run, having found no solution, *proves* the network
    /// unsatisfiable: a systematic search that ran to completion (no limit,
    /// no deadline, no cancellation) has exhausted the space.
    pub fn proves_unsatisfiable(&self) -> bool {
        self.solution.is_none() && !self.hit_node_limit && !self.hit_deadline && !self.cancelled
    }
}

/// The named schemes of the paper, plus extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Random variable/value order, chronological backtracking (paper
    /// Section 4, "base scheme").
    Base,
    /// Most-constraining variable ordering, least-constraining value
    /// ordering and backjumping (paper Section 4, "enhanced scheme").
    Enhanced,
    /// The enhanced scheme with forward checking added (extension).
    ForwardChecking,
    /// The enhanced scheme with AC-3 preprocessing and forward checking
    /// (extension).
    FullPropagation,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Base => write!(f, "base"),
            Scheme::Enhanced => write!(f, "enhanced"),
            Scheme::ForwardChecking => write!(f, "forward-checking"),
            Scheme::FullPropagation => write!(f, "full-propagation"),
        }
    }
}

/// A configurable depth-first constraint-network solver.
///
/// # Examples
///
/// ```
/// use mlo_csp::{ConstraintNetwork, SearchEngine, Scheme};
/// let mut net = ConstraintNetwork::new();
/// let a = net.add_variable("A", vec![0, 1]);
/// let b = net.add_variable("B", vec![0, 1]);
/// net.add_constraint(a, b, vec![(0, 1), (1, 0)]).unwrap();
/// let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
/// assert!(result.is_satisfiable());
/// ```
#[derive(Debug, Clone)]
pub struct SearchEngine {
    /// How the next variable to instantiate is chosen.
    pub variable_ordering: VariableOrdering,
    /// How the values of the chosen variable are ordered.
    pub value_ordering: ValueOrdering,
    /// Whether to backjump (conflict-directed) instead of chronological
    /// backtracking.
    pub backjumping: bool,
    /// Whether to prune neighbouring domains after each assignment.
    pub forward_checking: bool,
    /// Whether to establish arc consistency (AC-3) before searching.
    pub ac3_preprocessing: bool,
    /// Abort after visiting this many nodes (`None` = unlimited).
    pub node_limit: Option<u64>,
    /// Seed for the random orderings of the base scheme.
    pub seed: u64,
}

impl Default for SearchEngine {
    fn default() -> Self {
        SearchEngine::with_scheme(Scheme::Enhanced)
    }
}

impl SearchEngine {
    /// Creates an engine configured as one of the named schemes.
    pub fn with_scheme(scheme: Scheme) -> Self {
        match scheme {
            Scheme::Base => SearchEngine {
                variable_ordering: VariableOrdering::Random,
                value_ordering: ValueOrdering::Random,
                backjumping: false,
                forward_checking: false,
                ac3_preprocessing: false,
                node_limit: None,
                seed: 0xC0FFEE,
            },
            Scheme::Enhanced => SearchEngine {
                variable_ordering: VariableOrdering::MostConstraining,
                value_ordering: ValueOrdering::LeastConstraining,
                backjumping: true,
                forward_checking: false,
                ac3_preprocessing: false,
                node_limit: None,
                seed: 0xC0FFEE,
            },
            Scheme::ForwardChecking => SearchEngine {
                forward_checking: true,
                ..SearchEngine::with_scheme(Scheme::Enhanced)
            },
            Scheme::FullPropagation => SearchEngine {
                forward_checking: true,
                ac3_preprocessing: true,
                ..SearchEngine::with_scheme(Scheme::Enhanced)
            },
        }
    }

    /// Sets the random seed used by the random orderings (base scheme).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets a node limit after which the search gives up.
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Solves a network, returning the first solution found (if any) along
    /// with search statistics.
    ///
    /// The RNG for the random orderings is seeded from [`SearchEngine::seed`]
    /// and the node limit comes from the engine configuration; use
    /// [`SearchEngine::solve_with`] to thread a caller-owned RNG and
    /// request-scoped limits instead.
    pub fn solve<V: Value>(&self, network: &ConstraintNetwork<V>) -> SolveResult<V> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.solve_with(network, &mut rng, &self.configured_limits())
    }

    /// Solves a network with a caller-owned RNG (and the engine's own node
    /// limit).  Identical RNG states replay identical random orderings.
    pub fn solve_with_rng<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
    ) -> SolveResult<V> {
        self.solve_with(network, rng, &self.configured_limits())
    }

    /// Solves a network with a caller-owned RNG and per-run limits — the
    /// full form of the seam behind [`NetworkSearch`].
    pub fn solve_with<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
    ) -> SolveResult<V> {
        engine::run(self, network, rng, limits, None)
    }

    /// Like [`SearchEngine::solve_with`], but additionally polls a
    /// [`CancelToken`]: when another portfolio member wins the race, the
    /// token aborts this search at the next poll point and the result comes
    /// back with [`SolveResult::cancelled`] set.
    pub fn solve_cancellable<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
        cancel: &CancelToken,
    ) -> SolveResult<V> {
        engine::run(self, network, rng, limits, Some(cancel))
    }

    fn configured_limits(&self) -> SearchLimits {
        SearchLimits {
            node_limit: self.node_limit,
            deadline: None,
        }
    }
}

impl<V: Value> NetworkSearch<V> for SearchEngine {
    fn search(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
    ) -> SolveResult<V> {
        // Request limits override the engine's own configuration.
        let merged = SearchLimits {
            node_limit: limits.node_limit.or(self.node_limit),
            deadline: limits.deadline,
        };
        self.solve_with(network, rng, &merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_configurations() {
        let base = SearchEngine::with_scheme(Scheme::Base);
        assert_eq!(base.variable_ordering, VariableOrdering::Random);
        assert!(!base.backjumping);
        let enhanced = SearchEngine::with_scheme(Scheme::Enhanced);
        assert_eq!(
            enhanced.variable_ordering,
            VariableOrdering::MostConstraining
        );
        assert_eq!(enhanced.value_ordering, ValueOrdering::LeastConstraining);
        assert!(enhanced.backjumping);
        assert!(!enhanced.forward_checking);
        let fc = SearchEngine::with_scheme(Scheme::ForwardChecking);
        assert!(fc.forward_checking && !fc.ac3_preprocessing);
        let full = SearchEngine::with_scheme(Scheme::FullPropagation);
        assert!(full.forward_checking && full.ac3_preprocessing);
        assert_eq!(
            SearchEngine::default().variable_ordering,
            enhanced.variable_ordering
        );
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::Base.to_string(), "base");
        assert_eq!(Scheme::Enhanced.to_string(), "enhanced");
        assert_eq!(Scheme::ForwardChecking.to_string(), "forward-checking");
        assert_eq!(Scheme::FullPropagation.to_string(), "full-propagation");
    }

    #[test]
    fn stats_absorb_and_display() {
        let mut a = SearchStats {
            nodes_visited: 5,
            backtracks: 1,
            backjumps: 0,
            consistency_checks: 10,
            prunings: 2,
            max_depth: 3,
            steals: 1,
            splits: 2,
            bytes_touched: 100,
            soft_revisions: 9,
            bound_deletions: 4,
        };
        let b = SearchStats {
            nodes_visited: 7,
            backtracks: 2,
            backjumps: 4,
            consistency_checks: 5,
            prunings: 0,
            max_depth: 6,
            steals: 3,
            splits: 1,
            bytes_touched: 28,
            soft_revisions: 11,
            bound_deletions: 6,
        };
        a.absorb(&b);
        assert_eq!(a.nodes_visited, 12);
        assert_eq!(a.backjumps, 4);
        assert_eq!(a.max_depth, 6);
        assert_eq!(a.steals, 4);
        assert_eq!(a.splits, 3);
        assert_eq!(a.bytes_touched, 128);
        assert_eq!(a.soft_revisions, 20);
        assert_eq!(a.bound_deletions, 10);
        assert!(a.to_string().contains("nodes=12"));
        assert!(a.to_string().contains("bytes=128"));
        assert!(a.to_string().contains("soft_revisions=20"));
        assert!(a.to_string().contains("bound_deletions=10"));
    }

    /// `absorb` must sum (or max) *every* counter and `Display` must print
    /// every field — exhaustive destructuring makes adding a field without
    /// updating both a compile error here, so a new counter can never be
    /// silently dropped again.
    #[test]
    fn stats_absorb_covers_every_field() {
        let a = SearchStats {
            nodes_visited: 1,
            backtracks: 2,
            backjumps: 3,
            consistency_checks: 4,
            prunings: 5,
            max_depth: 6,
            steals: 7,
            splits: 8,
            bytes_touched: 9,
            soft_revisions: 10,
            bound_deletions: 11,
        };
        let b = SearchStats {
            nodes_visited: 100,
            backtracks: 200,
            backjumps: 300,
            consistency_checks: 400,
            prunings: 500,
            max_depth: 600,
            steals: 700,
            splits: 800,
            bytes_touched: 900,
            soft_revisions: 1000,
            bound_deletions: 1100,
        };
        let mut merged = a;
        merged.absorb(&b);
        // Exhaustive: a missing field here fails to compile.
        let SearchStats {
            nodes_visited,
            backtracks,
            backjumps,
            consistency_checks,
            prunings,
            max_depth,
            steals,
            splits,
            bytes_touched,
            soft_revisions,
            bound_deletions,
        } = merged;
        assert_eq!(nodes_visited, a.nodes_visited + b.nodes_visited);
        assert_eq!(backtracks, a.backtracks + b.backtracks);
        assert_eq!(backjumps, a.backjumps + b.backjumps);
        assert_eq!(
            consistency_checks,
            a.consistency_checks + b.consistency_checks
        );
        assert_eq!(prunings, a.prunings + b.prunings);
        assert_eq!(max_depth, a.max_depth.max(b.max_depth));
        assert_eq!(steals, a.steals + b.steals);
        assert_eq!(splits, a.splits + b.splits);
        assert_eq!(bytes_touched, a.bytes_touched + b.bytes_touched);
        assert_eq!(soft_revisions, a.soft_revisions + b.soft_revisions);
        assert_eq!(bound_deletions, a.bound_deletions + b.bound_deletions);
        // Display names every counter.
        let rendered = merged.to_string();
        for field in [
            "nodes=",
            "backtracks=",
            "backjumps=",
            "checks=",
            "prunings=",
            "max_depth=",
            "steals=",
            "splits=",
            "bytes=",
            "soft_revisions=",
            "bound_deletions=",
        ] {
            assert!(rendered.contains(field), "Display is missing `{field}`");
        }
    }

    #[test]
    fn builder_style_setters() {
        let e = SearchEngine::with_scheme(Scheme::Base)
            .seed(42)
            .node_limit(100);
        assert_eq!(e.seed, 42);
        assert_eq!(e.node_limit, Some(100));
    }
}
