//! Enumerating and ranking all solutions of a network.
//!
//! The paper observes (Section 5) that the base and enhanced schemes may
//! return *different* solutions when several exist, and its first future
//! direction is to distinguish between solutions by weighting constraints.
//! This module provides the groundwork: exhaustive enumeration of all
//! solutions (with a cap), solution counting, and selection of the best
//! solution under a caller-supplied score — which is how the layout crate
//! picks the assignment with the best static locality when the network is
//! under-constrained.

use crate::assignment::{Assignment, Solution};
use crate::network::{ConstraintNetwork, VarId};
use crate::solver::SearchStats;
use crate::Value;
use std::time::{Duration, Instant};

/// Result of an enumeration run.
#[derive(Debug, Clone)]
pub struct EnumerationResult<V> {
    /// All solutions found, in depth-first discovery order (capped at the
    /// configured limit).
    pub solutions: Vec<Solution<V>>,
    /// Whether enumeration stopped because the solution cap was reached
    /// (when `true`, more solutions may exist).
    pub truncated: bool,
    /// Search counters accumulated over the whole enumeration.
    pub stats: SearchStats,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl<V: Value> EnumerationResult<V> {
    /// Number of solutions found.
    pub fn count(&self) -> usize {
        self.solutions.len()
    }

    /// Whether at least one solution was found.
    pub fn is_satisfiable(&self) -> bool {
        !self.solutions.is_empty()
    }
}

/// Exhaustive depth-first solution enumerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Enumerator {
    /// Stop after this many solutions (protects against combinatorial
    /// explosion on loosely constrained networks).
    pub solution_limit: usize,
    /// Stop after visiting this many nodes.
    pub node_limit: u64,
}

impl Default for Enumerator {
    fn default() -> Self {
        Enumerator {
            solution_limit: 10_000,
            node_limit: 5_000_000,
        }
    }
}

impl Enumerator {
    /// Creates an enumerator with the given solution cap.
    pub fn with_limit(solution_limit: usize) -> Self {
        Enumerator {
            solution_limit,
            ..Enumerator::default()
        }
    }

    /// Enumerates the solutions of a network (mask-based restricted views
    /// enumerate only assignments over their live values).
    pub fn enumerate<V: Value>(&self, network: &ConstraintNetwork<V>) -> EnumerationResult<V> {
        let start = Instant::now();
        let mut stats = SearchStats::default();
        let mut solutions = Vec::new();
        let mut truncated = false;

        if network.variables().any(|v| network.live_count(v) == 0) {
            return EnumerationResult {
                solutions,
                truncated,
                stats,
                elapsed: start.elapsed(),
            };
        }

        // Static variable order: most-constrained first keeps the tree small.
        let mut order: Vec<VarId> = network.variables().collect();
        order.sort_by_key(|&v| {
            (
                std::cmp::Reverse(network.neighbours(v).len()),
                network.live_count(v),
                v,
            )
        });

        // The compiled kernel answers every consistency probe; live value
        // lists honour a restricted view's mask.
        let kernel = std::sync::Arc::clone(network.kernel());
        let live: Vec<Vec<usize>> = network
            .variables()
            .map(|v| network.live_values(v))
            .collect();

        // Assigned-prefix adjacency: under the static order the assigned
        // set at depth `d` is exactly `order[..d]`, so each node's conflict
        // probes reduce to a precomputed filtered edge list.  Filtering
        // preserves adjacency order, hence the probe order, early-exit
        // points and check counts of `conflicts_any` — while keeping each
        // constraint's contiguous row block hot across the value loop.
        let mut position = vec![0usize; network.variable_count()];
        for (d, &v) in order.iter().enumerate() {
            position[v.index()] = d;
        }
        let earlier: Vec<Vec<crate::bitset::KernelEdge>> = order
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                kernel
                    .edges(v)
                    .iter()
                    .filter(|e| position[e.other.index()] < d)
                    .copied()
                    .collect()
            })
            .collect();

        let mut assignment = Assignment::new(network.variable_count());
        self.descend(
            network,
            &kernel,
            &live,
            &order,
            &earlier,
            0,
            &mut assignment,
            &mut solutions,
            &mut truncated,
            &mut stats,
        );

        EnumerationResult {
            solutions,
            truncated,
            stats,
            elapsed: start.elapsed(),
        }
    }

    /// Counts solutions without materializing them (same caps apply, so the
    /// count is a lower bound when the result reports truncation).
    pub fn count<V: Value>(&self, network: &ConstraintNetwork<V>) -> usize {
        self.enumerate(network).count()
    }

    /// Returns the solution maximizing `score`, or `None` when the network
    /// is unsatisfiable.  Ties keep the first-discovered solution, so the
    /// result is deterministic.
    pub fn best_by<V: Value, F>(
        &self,
        network: &ConstraintNetwork<V>,
        mut score: F,
    ) -> Option<Solution<V>>
    where
        F: FnMut(&Solution<V>) -> f64,
    {
        let result = self.enumerate(network);
        let mut best: Option<(f64, Solution<V>)> = None;
        for solution in result.solutions {
            let s = score(&solution);
            match &best {
                Some((b, _)) if s <= *b => {}
                _ => best = Some((s, solution)),
            }
        }
        best.map(|(_, s)| s)
    }

    #[allow(clippy::too_many_arguments)]
    fn descend<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        kernel: &crate::bitset::BitKernel,
        live: &[Vec<usize>],
        order: &[VarId],
        earlier: &[Vec<crate::bitset::KernelEdge>],
        depth: usize,
        assignment: &mut Assignment,
        solutions: &mut Vec<Solution<V>>,
        truncated: &mut bool,
        stats: &mut SearchStats,
    ) {
        if *truncated {
            return;
        }
        if depth == order.len() {
            solutions.push(Solution::from_assignment(network, assignment));
            if solutions.len() >= self.solution_limit {
                *truncated = true;
            }
            return;
        }
        let var = order[depth];
        stats.max_depth = stats.max_depth.max(depth + 1);
        for &value in &live[var.index()] {
            if stats.nodes_visited >= self.node_limit {
                *truncated = true;
                return;
            }
            stats.nodes_visited += 1;
            // Inline `conflicts_any` over the assigned-prefix edge list:
            // one check per probed edge, early exit on the first conflict.
            let mut conflict = false;
            for edge in &earlier[depth] {
                if let Some(other_value) = assignment.get(edge.other) {
                    stats.consistency_checks += 1;
                    let c = kernel.constraint(edge.constraint);
                    let allowed = if edge.var_is_first {
                        c.allows(value, other_value)
                    } else {
                        c.allows(other_value, value)
                    };
                    if !allowed {
                        conflict = true;
                        break;
                    }
                }
            }
            if conflict {
                continue;
            }
            assignment.assign(var, value);
            self.descend(
                network,
                kernel,
                live,
                order,
                earlier,
                depth + 1,
                assignment,
                solutions,
                truncated,
                stats,
            );
            assignment.unassign(var);
            if *truncated {
                return;
            }
        }
        stats.backtracks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Scheme, SearchEngine};

    fn paper_network() -> ConstraintNetwork<(i64, i64)> {
        let mut net = ConstraintNetwork::new();
        let q1 = net.add_variable("Q1", vec![(1, 0), (0, 1), (1, 1)]);
        let q2 = net.add_variable("Q2", vec![(1, -1), (1, 1)]);
        let q3 = net.add_variable("Q3", vec![(0, 1), (1, 1), (1, 2)]);
        let q4 = net.add_variable("Q4", vec![(1, 0), (0, 1), (1, 1)]);
        net.add_constraint(q1, q2, vec![((1, 0), (1, 1)), ((0, 1), (1, -1))])
            .unwrap();
        net.add_constraint(
            q1,
            q3,
            vec![((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))],
        )
        .unwrap();
        net.add_constraint(q1, q4, vec![((1, 0), (1, 0)), ((0, 1), (0, 1))])
            .unwrap();
        net.add_constraint(q2, q3, vec![((1, 1), (0, 1)), ((1, -1), (1, 1))])
            .unwrap();
        net.add_constraint(q2, q4, vec![((1, -1), (0, 1)), ((1, 1), (1, 0))])
            .unwrap();
        net.add_constraint(q3, q4, vec![((0, 1), (1, 0))]).unwrap();
        net
    }

    #[test]
    fn paper_network_has_exactly_one_solution() {
        let net = paper_network();
        let result = Enumerator::default().enumerate(&net);
        assert_eq!(result.count(), 1);
        assert!(!result.truncated);
        assert!(result.is_satisfiable());
        let sol = &result.solutions[0];
        assert_eq!(sol.values(), &[(1, 0), (1, 1), (0, 1), (1, 0)]);
    }

    #[test]
    fn unconstrained_network_enumerates_the_product_of_domains() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        net.add_variable("a", vec![0, 1, 2]);
        net.add_variable("b", vec![0, 1]);
        let result = Enumerator::default().enumerate(&net);
        assert_eq!(result.count(), 6);
        assert_eq!(Enumerator::default().count(&net), 6);
    }

    #[test]
    fn solution_limit_truncates() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        net.add_variable("a", vec![0, 1, 2, 3]);
        net.add_variable("b", vec![0, 1, 2, 3]);
        let result = Enumerator::with_limit(5).enumerate(&net);
        assert_eq!(result.count(), 5);
        assert!(result.truncated);
    }

    #[test]
    fn node_limit_truncates() {
        let spec = crate::random::RandomNetworkSpec {
            variables: 12,
            domain_size: 4,
            density: 0.2,
            tightness: 0.1,
            seed: 5,
        };
        let net = spec.generate();
        let result = Enumerator {
            solution_limit: usize::MAX,
            node_limit: 50,
        }
        .enumerate(&net);
        assert!(result.truncated);
        assert!(result.stats.nodes_visited <= 51);
    }

    #[test]
    fn unsatisfiable_networks_enumerate_nothing() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        net.add_constraint(a, b, vec![]).unwrap();
        let result = Enumerator::default().enumerate(&net);
        assert_eq!(result.count(), 0);
        assert!(!result.is_satisfiable());
        assert!(!result.truncated);
    }

    #[test]
    fn empty_domains_yield_no_solutions() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        net.add_variable("a", vec![]);
        let result = Enumerator::default().enumerate(&net);
        assert_eq!(result.count(), 0);
    }

    #[test]
    fn best_by_picks_the_highest_scoring_solution() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![1, 5, 3]);
        let b = net.add_variable("b", vec![2, 4]);
        // All combinations allowed.
        let best = Enumerator::default()
            .best_by(&net, |s| (*s.value(a) + *s.value(b)) as f64)
            .expect("satisfiable");
        assert_eq!(*best.value(a), 5);
        assert_eq!(*best.value(b), 4);
        // Unsatisfiable case returns None.
        let mut bad: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let x = bad.add_variable("x", vec![0]);
        let y = bad.add_variable("y", vec![0]);
        bad.add_constraint(x, y, vec![]).unwrap();
        assert!(Enumerator::default().best_by(&bad, |_| 0.0).is_none());
    }

    #[test]
    fn every_enumerated_solution_satisfies_the_network() {
        for seed in 0..5u64 {
            let spec = crate::random::RandomNetworkSpec {
                variables: 8,
                domain_size: 3,
                density: 0.5,
                tightness: 0.4,
                seed,
            };
            let net = spec.generate();
            let result = Enumerator::default().enumerate(&net);
            for sol in &result.solutions {
                let mut asg = Assignment::new(net.variable_count());
                for v in net.variables() {
                    asg.assign(v, sol.value_index(v));
                }
                assert_eq!(net.is_solution(&asg), Ok(true));
            }
            // Enumeration agrees with the single-solution engine on
            // satisfiability.
            let engine = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
            assert_eq!(
                engine.is_satisfiable(),
                result.is_satisfiable(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn enumeration_count_matches_brute_force_on_small_networks() {
        for seed in 0..4u64 {
            let spec = crate::random::RandomNetworkSpec {
                variables: 5,
                domain_size: 3,
                density: 0.6,
                tightness: 0.4,
                seed,
            };
            let net = spec.generate();
            // Brute force over the full cross product.
            let mut brute = 0usize;
            let n = net.variable_count();
            let sizes: Vec<usize> = net.variables().map(|v| net.domain(v).len()).collect();
            let total: usize = sizes.iter().product();
            for code in 0..total {
                let mut rest = code;
                let mut asg = Assignment::new(n);
                for (i, &s) in sizes.iter().enumerate() {
                    asg.assign(VarId::new(i), rest % s);
                    rest /= s;
                }
                if net.is_solution(&asg) == Ok(true) {
                    brute += 1;
                }
            }
            assert_eq!(Enumerator::default().count(&net), brute, "seed {seed}");
        }
    }
}
