//! Deterministic fault injection: named failpoints with seeded,
//! count-based triggers.
//!
//! Production resilience claims ("a panicking strategy never hangs a
//! waiter", "the service degrades instead of crashing") are only testable
//! if faults can be injected at *exact, reproducible* points.  This module
//! provides that harness:
//!
//! * Code under test declares **failpoints** with
//!   [`fail_point!`](crate::fail_point) — named markers on the hot paths
//!   (`ac3.revise`, `steal.worker`, `service.publish`, ...) that cost one
//!   relaxed atomic load while no plan is installed and compile to nothing
//!   when the `failpoints` cargo feature is disabled.
//! * Tests install a [`FaultPlan`] mapping sites to [`FaultTrigger`]s —
//!   panic, delay or spurious error, gated by deterministic `skip` /
//!   `times` counters and an optional seeded probability — either
//!   programmatically via [`scoped`] or ambiently via the
//!   [`MLO_FAILPOINTS`](ENV_VAR) environment variable.
//!
//! Triggers are deterministic by construction: counters are per-site and
//! the probability gate runs a seeded xorshift generator, so the same plan
//! over the same execution order fires at the same hits.
//!
//! ```
//! use mlo_csp::fault::{self, FaultPlan, FaultTrigger};
//!
//! fn guarded() -> Result<u32, String> {
//!     mlo_csp::fail_point!("doc.example", |fault| Err(fault.to_string()));
//!     Ok(7)
//! }
//!
//! let _plan = fault::scoped(FaultPlan::new().with("doc.example", FaultTrigger::error().times(1)));
//! assert!(guarded().is_err()); // first hit fires
//! assert_eq!(guarded(), Ok(7)); // trigger budget exhausted
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Duration;

/// The environment variable holding an ambient fault plan, read on the
/// first failpoint hit of the process.
///
/// Syntax (entries joined by `;`):
///
/// ```text
/// MLO_FAILPOINTS="ac3.revise=delay(2)@times=50;engine.solve=panic@skip=1@times=1"
/// ```
///
/// Each entry is `site=action` with optional `@` modifiers:
///
/// * actions: `panic`, `error`, `delay(<millis>)`
/// * `@skip=N` — ignore the first `N` hits of the site
/// * `@times=N` — fire at most `N` times (default: unlimited)
/// * `@prob=F` + `@seed=S` — fire a hit with probability `F`, decided by a
///   seeded xorshift generator (deterministic per hit sequence)
pub const ENV_VAR: &str = "MLO_FAILPOINTS";

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a message naming the site (the containment paths record
    /// the site via [`take_last_triggered`]).
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Return a [`FaultError`] to the failpoint's error arm.  Sites
    /// declared with the bare `fail_point!(site)` form have no error arm
    /// and ignore this action.
    Error,
}

/// When a failpoint fires: a deterministic counter/probability gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTrigger {
    /// The injected behavior.
    pub action: FaultAction,
    /// Hits ignored before the trigger becomes eligible.
    pub skip: u64,
    /// Maximum number of firings (`None` = unlimited).
    pub times: Option<u64>,
    /// Optional `(probability, seed)` gate on each eligible hit.
    pub probability: Option<(f64, u64)>,
}

impl FaultTrigger {
    fn action(action: FaultAction) -> Self {
        FaultTrigger {
            action,
            skip: 0,
            times: None,
            probability: None,
        }
    }

    /// A trigger that panics.
    pub fn panic() -> Self {
        FaultTrigger::action(FaultAction::Panic)
    }

    /// A trigger that sleeps `millis` milliseconds.
    pub fn delay_ms(millis: u64) -> Self {
        FaultTrigger::action(FaultAction::Delay(Duration::from_millis(millis)))
    }

    /// A trigger that injects a spurious [`FaultError`].
    pub fn error() -> Self {
        FaultTrigger::action(FaultAction::Error)
    }

    /// Ignores the first `hits` passes through the site.
    pub fn skip(mut self, hits: u64) -> Self {
        self.skip = hits;
        self
    }

    /// Fires at most `count` times.
    pub fn times(mut self, count: u64) -> Self {
        self.times = Some(count);
        self
    }

    /// Gates each eligible hit on a seeded coin flip with probability `p`
    /// (clamped to `[0, 1]`); the xorshift stream makes the decision
    /// sequence a pure function of `seed`.
    pub fn probability(mut self, p: f64, seed: u64) -> Self {
        self.probability = Some((p.clamp(0.0, 1.0), seed));
        self
    }
}

/// The error an armed [`FaultAction::Error`] trigger injects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The failpoint that fired.
    pub site: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl std::error::Error for FaultError {}

/// A reproducible set of `(site, trigger)` entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    entries: Vec<(String, FaultTrigger)>,
}

/// Why a [`FaultPlan`] string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan parse error: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

impl FaultPlan {
    /// An empty plan (installing it arms the registry with zero sites,
    /// which masks any ambient [`ENV_VAR`] plan — the fault-free replay
    /// tool).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one `(site, trigger)` entry.
    pub fn with(mut self, site: impl Into<String>, trigger: FaultTrigger) -> Self {
        self.entries.push((site.into(), trigger));
        self
    }

    /// The configured entries.
    pub fn entries(&self) -> &[(String, FaultTrigger)] {
        &self.entries
    }

    /// Whether the plan has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the [`ENV_VAR`] syntax (see its docs).
    pub fn parse(text: &str) -> Result<Self, FaultParseError> {
        let mut plan = FaultPlan::new();
        for entry in text.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site, spec) = entry
                .split_once('=')
                .ok_or_else(|| FaultParseError(format!("missing `=` in `{entry}`")))?;
            let site = site.trim();
            if site.is_empty() {
                return Err(FaultParseError(format!("empty site in `{entry}`")));
            }
            plan.entries
                .push((site.to_string(), parse_trigger(spec.trim())?));
        }
        Ok(plan)
    }

    /// The ambient plan from [`ENV_VAR`], when the variable is set.
    pub fn from_env() -> Option<Result<Self, FaultParseError>> {
        std::env::var(ENV_VAR).ok().map(|text| Self::parse(&text))
    }
}

fn parse_trigger(spec: &str) -> Result<FaultTrigger, FaultParseError> {
    let mut parts = spec.split('@');
    let action = parts
        .next()
        .map(str::trim)
        .filter(|base| !base.is_empty())
        .ok_or_else(|| FaultParseError(format!("empty trigger in `{spec}`")))?;
    let mut trigger = match action {
        "panic" => FaultTrigger::panic(),
        "error" => FaultTrigger::error(),
        delay if delay.starts_with("delay(") && delay.ends_with(')') => {
            let millis = delay["delay(".len()..delay.len() - 1]
                .trim()
                .parse::<u64>()
                .map_err(|_| FaultParseError(format!("bad delay millis in `{spec}`")))?;
            FaultTrigger::delay_ms(millis)
        }
        other => {
            return Err(FaultParseError(format!(
                "unknown action `{other}` (expected panic, error or delay(<ms>))"
            )))
        }
    };
    let mut probability: Option<f64> = None;
    let mut seed: u64 = 0;
    for modifier in parts {
        let (key, value) = modifier
            .trim()
            .split_once('=')
            .ok_or_else(|| FaultParseError(format!("bad modifier `{modifier}`")))?;
        match key.trim() {
            "skip" => {
                trigger.skip = value
                    .trim()
                    .parse()
                    .map_err(|_| FaultParseError(format!("bad skip count in `{spec}`")))?;
            }
            "times" => {
                trigger.times = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| FaultParseError(format!("bad times count in `{spec}`")))?,
                );
            }
            "prob" => {
                probability = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| FaultParseError(format!("bad probability in `{spec}`")))?,
                );
            }
            "seed" => {
                seed = value
                    .trim()
                    .parse()
                    .map_err(|_| FaultParseError(format!("bad seed in `{spec}`")))?;
            }
            other => {
                return Err(FaultParseError(format!("unknown modifier `{other}`")));
            }
        }
    }
    if let Some(p) = probability {
        trigger = trigger.probability(p, seed);
    }
    Ok(trigger)
}

/// Per-site runtime state of an installed plan.
#[derive(Debug)]
struct ActiveSite {
    trigger: FaultTrigger,
    /// Total passes through the site.
    hits: AtomicU64,
    /// Firings so far (bounded by `trigger.times`).
    fired: AtomicU64,
    /// xorshift state of the probability gate.
    rng: AtomicU64,
}

#[derive(Debug, Default)]
struct ActivePlan {
    sites: HashMap<String, ActiveSite>,
}

/// Registry arming state: the one relaxed load every failpoint pays.
const STATE_UNINIT: u8 = 0;
const STATE_DISARMED: u8 = 1;
const STATE_ARMED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static PLAN: RwLock<Option<Arc<ActivePlan>>> = RwLock::new(None);
/// Serializes installs (and the tests that use them) process-wide.
static TEST_LOCK: Mutex<()> = Mutex::new(());
/// Protects the one-time environment read.
static ENV_INIT: Mutex<()> = Mutex::new(());

thread_local! {
    /// The last site whose trigger fired on this thread, recorded *before*
    /// an injected panic unwinds so containment code can attribute it.
    static LAST_TRIGGERED: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Declares a failpoint.
///
/// * `fail_point!("site")` — supports [`FaultAction::Panic`] and
///   [`FaultAction::Delay`]; an `error` trigger at such a site is a no-op.
/// * `fail_point!("site", |fault| expr)` — additionally supports
///   [`FaultAction::Error`]: when the trigger fires the enclosing function
///   returns `expr`, with `fault` bound to the [`FaultError`](crate::fault::FaultError).
///
/// Cost while disarmed: one relaxed atomic load.  With the `failpoints`
/// cargo feature disabled the runtime check compiles away entirely.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {{
        let _ = $crate::fault::hit($site);
    }};
    ($site:expr, $on_error:expr) => {{
        if let Some(fault) = $crate::fault::hit($site) {
            return $crate::fault::apply_handler($on_error, fault);
        }
    }};
}

/// Invokes a `fail_point!` error handler (an implementation detail of the
/// macro expansion: the generic bound gives closure parameters an expected
/// type, which direct invocation would not).
#[doc(hidden)]
pub fn apply_handler<R>(handler: impl FnOnce(FaultError) -> R, fault: FaultError) -> R {
    handler(fault)
}

/// Evaluates the failpoint `site`: returns `Some(FaultError)` when an
/// armed `error` trigger fires, handles `panic`/`delay` internally and
/// returns `None` otherwise.  Callers normally use
/// [`fail_point!`](crate::fail_point) instead.
#[inline]
pub fn hit(site: &str) -> Option<FaultError> {
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        None
    }
    #[cfg(feature = "failpoints")]
    {
        loop {
            match STATE.load(Ordering::Relaxed) {
                STATE_DISARMED => return None,
                STATE_ARMED => return fire(site),
                _ => init_from_env(),
            }
        }
    }
}

/// Installs `plan`, replacing any installed or ambient plan.
pub fn install(plan: FaultPlan) {
    let mut sites = HashMap::new();
    for (site, trigger) in plan.entries {
        let seed = trigger.probability.map(|(_, seed)| seed).unwrap_or(0);
        sites.insert(
            site,
            ActiveSite {
                trigger,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
                rng: AtomicU64::new(seed.wrapping_add(0x9E37_79B9_7F4A_7C15) | 1),
            },
        );
    }
    *write_plan() = Some(Arc::new(ActivePlan { sites }));
    STATE.store(STATE_ARMED, Ordering::SeqCst);
}

/// Removes any installed plan.  The registry returns to the *uninitialized*
/// state, so an ambient [`ENV_VAR`] plan (if present) re-arms on the next
/// hit — a scoped override never permanently masks the environment.
pub fn clear() {
    *write_plan() = None;
    STATE.store(STATE_UNINIT, Ordering::SeqCst);
}

/// Installs `plan` for the lifetime of the returned guard, serializing
/// with every other scoped plan in the process (tests that inject faults
/// cannot race each other's registries).  Dropping the guard restores the
/// uninitialized state (see [`clear`]).
pub fn scoped(plan: FaultPlan) -> ScopedPlan {
    let lock = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    install(plan);
    ScopedPlan { _lock: lock }
}

/// Guard of a [`scoped`] plan installation.
#[derive(Debug)]
pub struct ScopedPlan {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ScopedPlan {
    fn drop(&mut self) {
        clear();
    }
}

/// Takes (and clears) the last site whose trigger fired on this thread.
/// Containment code calls this after catching an injected panic to record
/// the failpoint in the typed outcome.
pub fn take_last_triggered() -> Option<String> {
    LAST_TRIGGERED.with(|last| last.borrow_mut().take())
}

/// Renders a caught panic payload (`&str` and `String` payloads verbatim,
/// an opaque marker otherwise) — the one panic-message extractor every
/// containment path shares.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn write_plan() -> std::sync::RwLockWriteGuard<'static, Option<Arc<ActivePlan>>> {
    PLAN.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(feature = "failpoints")]
fn init_from_env() {
    let _guard = ENV_INIT.lock().unwrap_or_else(PoisonError::into_inner);
    if STATE.load(Ordering::SeqCst) != STATE_UNINIT {
        return; // raced: someone else initialized meanwhile
    }
    match FaultPlan::from_env() {
        Some(Ok(plan)) => install(plan),
        Some(Err(error)) => {
            eprintln!("ignoring invalid {ENV_VAR}: {error}");
            STATE.store(STATE_DISARMED, Ordering::SeqCst);
        }
        None => STATE.store(STATE_DISARMED, Ordering::SeqCst),
    }
}

#[cfg(feature = "failpoints")]
fn fire(site: &str) -> Option<FaultError> {
    let plan = {
        let guard = PLAN.read().unwrap_or_else(PoisonError::into_inner);
        guard.as_ref().map(Arc::clone)
    }?;
    let state = plan.sites.get(site)?;
    let sequence = state.hits.fetch_add(1, Ordering::Relaxed);
    if sequence < state.trigger.skip {
        return None;
    }
    if let Some((p, _)) = state.trigger.probability {
        let next = state
            .rng
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |mut x| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Some(x)
            })
            .unwrap_or(1);
        let unit = (next >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= p {
            return None;
        }
    }
    if let Some(times) = state.trigger.times {
        if state.fired.fetch_add(1, Ordering::Relaxed) >= times {
            return None;
        }
    }
    match state.trigger.action {
        FaultAction::Panic => {
            LAST_TRIGGERED.with(|last| *last.borrow_mut() = Some(site.to_string()));
            panic!("failpoint `{site}` injected panic");
        }
        FaultAction::Delay(duration) => {
            std::thread::sleep(duration);
            None
        }
        FaultAction::Error => Some(FaultError {
            site: site.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_env_syntax() {
        let plan = FaultPlan::parse(
            "ac3.revise=delay(2)@times=50; engine.solve=panic@skip=1@times=1;x=error@prob=0.5@seed=9",
        )
        .unwrap();
        assert_eq!(plan.entries().len(), 3);
        assert_eq!(
            plan.entries()[0],
            (
                "ac3.revise".to_string(),
                FaultTrigger::delay_ms(2).times(50)
            )
        );
        assert_eq!(
            plan.entries()[1],
            (
                "engine.solve".to_string(),
                FaultTrigger::panic().skip(1).times(1)
            )
        );
        assert_eq!(
            plan.entries()[2],
            ("x".to_string(), FaultTrigger::error().probability(0.5, 9))
        );
        // Empty plans and stray separators parse.
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ;").unwrap().is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(FaultPlan::parse("nosite").is_err());
        assert!(FaultPlan::parse("a=explode").is_err());
        assert!(FaultPlan::parse("a=delay(x)").is_err());
        assert!(FaultPlan::parse("a=panic@bogus=1").is_err());
        assert!(FaultPlan::parse("a=panic@times=abc").is_err());
        assert!(FaultPlan::parse("=panic").is_err());
    }

    #[test]
    fn skip_and_times_gate_deterministically() {
        let _plan =
            scoped(FaultPlan::new().with("test.count", FaultTrigger::error().skip(2).times(2)));
        let fired: Vec<bool> = (0..6).map(|_| hit("test.count").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, true, false, false]);
        // Unknown sites never fire.
        assert!(hit("test.unknown").is_none());
    }

    #[test]
    fn seeded_probability_is_reproducible() {
        let roll = || -> Vec<bool> {
            let _plan = scoped(
                FaultPlan::new().with("test.prob", FaultTrigger::error().probability(0.5, 42)),
            );
            (0..32).map(|_| hit("test.prob").is_some()).collect()
        };
        let first = roll();
        let second = roll();
        assert_eq!(first, second, "same seed, same decisions");
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
    }

    #[test]
    fn injected_panics_record_the_site() {
        let _plan = scoped(FaultPlan::new().with("test.panic", FaultTrigger::panic().times(1)));
        let result = std::panic::catch_unwind(|| hit("test.panic"));
        let payload = result.expect_err("the failpoint panics");
        assert!(panic_message(&*payload).contains("test.panic"));
        assert_eq!(take_last_triggered().as_deref(), Some("test.panic"));
        assert_eq!(take_last_triggered(), None, "taking clears the record");
        // The trigger budget is spent; the site is quiet now.
        assert!(hit("test.panic").is_none());
    }

    #[test]
    fn empty_scoped_plan_masks_everything() {
        let _plan = scoped(FaultPlan::new());
        assert!(hit("test.anything").is_none());
    }

    #[test]
    fn delay_actions_sleep_then_continue() {
        let _plan = scoped(FaultPlan::new().with("test.delay", FaultTrigger::delay_ms(5).times(1)));
        let start = std::time::Instant::now();
        assert!(hit("test.delay").is_none());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn fault_errors_render_the_site() {
        let error = FaultError {
            site: "a.b".to_string(),
        };
        assert!(error.to_string().contains("a.b"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultError>();
        assert_send_sync::<FaultPlan>();
    }
}
