//! Structural analysis of constraint networks.
//!
//! The solvers in [`crate::solver`] treat the network as a black box; this
//! module exposes the *structure* of the underlying constraint graph —
//! density, tightness, connectivity, widths — which is what determines how
//! hard a layout-selection problem actually is.  The quantities follow the
//! standard definitions of Dechter's *Constraint Processing* (the paper's
//! reference \[3\]):
//!
//! * **density** — fraction of variable pairs that are constrained,
//! * **tightness** — fraction of value pairs a constraint forbids,
//! * **width of an ordering** — the maximum number of earlier neighbours of
//!   any variable along that ordering; the **graph width** is the minimum
//!   over all orderings and is computed exactly by the greedy min-width
//!   procedure,
//! * **induced width** — the width after moralizing parents, an upper bound
//!   on the complexity of adaptive consistency.
//!
//! For memory-layout networks these numbers explain the Table 2 behaviour:
//! the benchmark networks are sparse (each array shares nests with only a
//! few other arrays) and have small induced width, which is why even the
//! base scheme terminates and the enhanced scheme is fast.

use crate::network::{ConstraintNetwork, VarId};
use crate::Value;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Summary statistics of a constraint network's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Number of variables.
    pub variables: usize,
    /// Number of binary constraints.
    pub constraints: usize,
    /// Sum of all domain sizes (the paper's Table 1 "domain size").
    pub total_domain_size: usize,
    /// Largest single domain.
    pub max_domain_size: usize,
    /// Constraint-graph density in `[0, 1]`.
    pub density: f64,
    /// Mean constraint tightness in `[0, 1]` (0 when there are no
    /// constraints).
    pub mean_tightness: f64,
    /// Number of connected components of the constraint graph.
    pub components: usize,
    /// Width of the min-width ordering (an upper bound on the graph width,
    /// exact for the greedy construction).
    pub width: usize,
    /// Induced width along the min-degree ordering.
    pub induced_width: usize,
    /// Whether the constraint graph is a forest (cycle-free).
    pub is_forest: bool,
}

impl fmt::Display for NetworkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vars={} constraints={} domain={} density={:.2} tightness={:.2} \
             components={} width={} induced_width={} forest={}",
            self.variables,
            self.constraints,
            self.total_domain_size,
            self.density,
            self.mean_tightness,
            self.components,
            self.width,
            self.induced_width,
            self.is_forest
        )
    }
}

/// Computes the structural profile of a network.
pub fn profile<V: Value>(network: &ConstraintNetwork<V>) -> NetworkProfile {
    let n = network.variable_count();
    let m = network.constraint_count();
    let pairs = if n >= 2 { n * (n - 1) / 2 } else { 0 };
    let density = if pairs == 0 {
        0.0
    } else {
        m as f64 / pairs as f64
    };
    let mean_tightness = if m == 0 {
        0.0
    } else {
        network
            .constraints()
            .iter()
            .map(|c| {
                let da = network.domain(c.first()).len();
                let db = network.domain(c.second()).len();
                let all = (da * db).max(1);
                1.0 - c.pair_count() as f64 / all as f64
            })
            .sum::<f64>()
            / m as f64
    };
    let ordering = min_width_ordering(network);
    let width = ordering_width(network, &ordering);
    let induced = induced_width(network, &min_degree_ordering(network));
    NetworkProfile {
        variables: n,
        constraints: m,
        total_domain_size: network.total_domain_size(),
        max_domain_size: network
            .variables()
            .map(|v| network.domain(v).len())
            .max()
            .unwrap_or(0),
        density,
        mean_tightness,
        components: connected_components(network).len(),
        width,
        induced_width: induced,
        is_forest: is_forest(network),
    }
}

/// The connected components of the constraint graph, each as a sorted list
/// of variables.  Components can be solved independently — a useful
/// decomposition for whole-program layout problems where unrelated groups of
/// arrays never share a nest.
pub fn connected_components<V: Value>(network: &ConstraintNetwork<V>) -> Vec<Vec<VarId>> {
    let n = network.variable_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in network.variables() {
        if seen[start.index()] {
            continue;
        }
        let mut queue = VecDeque::from([start]);
        seen[start.index()] = true;
        let mut component = Vec::new();
        while let Some(v) = queue.pop_front() {
            component.push(v);
            for w in network.neighbours(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        component.sort();
        components.push(component);
    }
    components
}

/// Whether the constraint graph contains no cycle.
pub fn is_forest<V: Value>(network: &ConstraintNetwork<V>) -> bool {
    // A graph is a forest iff every component with k vertices has exactly
    // k - 1 edges.  Count edges per component.
    let components = connected_components(network);
    for component in &components {
        let vertex_set: BTreeSet<VarId> = component.iter().copied().collect();
        let mut edges = 0usize;
        for c in network.constraints() {
            if vertex_set.contains(&c.first()) && vertex_set.contains(&c.second()) {
                edges += 1;
            }
        }
        if edges + 1 != component.len() {
            return false;
        }
    }
    true
}

/// The degree (number of distinct neighbours) of every variable.
pub fn degrees<V: Value>(network: &ConstraintNetwork<V>) -> Vec<usize> {
    network
        .variables()
        .map(|v| network.neighbours(v).len())
        .collect()
}

/// The greedy **min-width ordering**: repeatedly remove a minimum-degree
/// vertex from the graph and place it *last*.  The width of the returned
/// ordering equals the graph width (Dechter, ch. 4).
pub fn min_width_ordering<V: Value>(network: &ConstraintNetwork<V>) -> Vec<VarId> {
    let n = network.variable_count();
    let mut remaining: BTreeSet<VarId> = network.variables().collect();
    let mut order = vec![VarId::new(0); n];
    for position in (0..n).rev() {
        let chosen = remaining
            .iter()
            .copied()
            .min_by_key(|&v| {
                network
                    .neighbours(v)
                    .into_iter()
                    .filter(|w| remaining.contains(w))
                    .count()
            })
            .expect("remaining is non-empty while positions remain");
        remaining.remove(&chosen);
        order[position] = chosen;
    }
    order
}

/// The greedy **min-degree (min-induced-width) ordering**: repeatedly remove
/// a minimum-degree vertex and connect its remaining neighbours, placing the
/// removed vertex last.
pub fn min_degree_ordering<V: Value>(network: &ConstraintNetwork<V>) -> Vec<VarId> {
    let n = network.variable_count();
    // Work on an explicit adjacency copy because elimination adds edges.
    let mut adjacency: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for c in network.constraints() {
        adjacency[c.first().index()].insert(c.second().index());
        adjacency[c.second().index()].insert(c.first().index());
    }
    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut order = vec![VarId::new(0); n];
    for position in (0..n).rev() {
        let chosen = remaining
            .iter()
            .copied()
            .min_by_key(|&v| {
                adjacency[v]
                    .iter()
                    .filter(|w| remaining.contains(w))
                    .count()
            })
            .expect("remaining is non-empty while positions remain");
        remaining.remove(&chosen);
        // Connect the eliminated vertex's remaining neighbours pairwise.
        let neighbours: Vec<usize> = adjacency[chosen]
            .iter()
            .copied()
            .filter(|w| remaining.contains(w))
            .collect();
        for (i, &a) in neighbours.iter().enumerate() {
            for &b in &neighbours[i + 1..] {
                adjacency[a].insert(b);
                adjacency[b].insert(a);
            }
        }
        order[position] = VarId::new(chosen);
    }
    order
}

/// The width of a given ordering: the maximum, over variables, of the number
/// of neighbours that appear *earlier* in the ordering.
pub fn ordering_width<V: Value>(network: &ConstraintNetwork<V>, ordering: &[VarId]) -> usize {
    let position: Vec<usize> = positions(network.variable_count(), ordering);
    network
        .variables()
        .map(|v| {
            network
                .neighbours(v)
                .into_iter()
                .filter(|w| position[w.index()] < position[v.index()])
                .count()
        })
        .max()
        .unwrap_or(0)
}

/// The induced width of an ordering: processing variables from last to
/// first, each variable's earlier neighbours are connected pairwise, and the
/// induced width is the maximum number of earlier neighbours encountered.
pub fn induced_width<V: Value>(network: &ConstraintNetwork<V>, ordering: &[VarId]) -> usize {
    let n = network.variable_count();
    if n == 0 {
        return 0;
    }
    let position = positions(n, ordering);
    let mut adjacency: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for c in network.constraints() {
        adjacency[c.first().index()].insert(c.second().index());
        adjacency[c.second().index()].insert(c.first().index());
    }
    let mut width = 0usize;
    for &v in ordering.iter().rev() {
        let earlier: Vec<usize> = adjacency[v.index()]
            .iter()
            .copied()
            .filter(|&w| position[w] < position[v.index()])
            .collect();
        width = width.max(earlier.len());
        for (i, &a) in earlier.iter().enumerate() {
            for &b in &earlier[i + 1..] {
                adjacency[a].insert(b);
                adjacency[b].insert(a);
            }
        }
    }
    width
}

fn positions(n: usize, ordering: &[VarId]) -> Vec<usize> {
    assert_eq!(
        ordering.len(),
        n,
        "ordering must mention every variable exactly once"
    );
    let mut position = vec![usize::MAX; n];
    for (i, v) in ordering.iter().enumerate() {
        assert!(
            position[v.index()] == usize::MAX,
            "ordering mentions {v} twice"
        );
        position[v.index()] = i;
    }
    position
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example network of the paper's Section 3 (same as network.rs).
    fn paper_network() -> (ConstraintNetwork<(i64, i64)>, Vec<VarId>) {
        let mut net = ConstraintNetwork::new();
        let q1 = net.add_variable("Q1", vec![(1, 0), (0, 1), (1, 1)]);
        let q2 = net.add_variable("Q2", vec![(1, -1), (1, 1)]);
        let q3 = net.add_variable("Q3", vec![(0, 1), (1, 1), (1, 2)]);
        let q4 = net.add_variable("Q4", vec![(1, 0), (0, 1), (1, 1)]);
        net.add_constraint(q1, q2, vec![((1, 0), (1, 1)), ((0, 1), (1, -1))])
            .unwrap();
        net.add_constraint(
            q1,
            q3,
            vec![((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))],
        )
        .unwrap();
        net.add_constraint(q1, q4, vec![((1, 0), (1, 0)), ((0, 1), (0, 1))])
            .unwrap();
        net.add_constraint(q2, q3, vec![((1, 1), (0, 1)), ((1, -1), (1, 1))])
            .unwrap();
        net.add_constraint(q2, q4, vec![((1, -1), (0, 1)), ((1, 1), (1, 0))])
            .unwrap();
        net.add_constraint(q3, q4, vec![((0, 1), (1, 0))]).unwrap();
        (net, vec![q1, q2, q3, q4])
    }

    fn chain(len: usize) -> ConstraintNetwork<i32> {
        let mut net = ConstraintNetwork::new();
        let vars: Vec<VarId> = (0..len)
            .map(|i| net.add_variable(format!("v{i}"), vec![0, 1]))
            .collect();
        for w in vars.windows(2) {
            net.add_constraint(w[0], w[1], vec![(0, 1), (1, 0)])
                .unwrap();
        }
        net
    }

    #[test]
    fn paper_network_profile() {
        let (net, _) = paper_network();
        let p = profile(&net);
        assert_eq!(p.variables, 4);
        assert_eq!(p.constraints, 6);
        assert_eq!(p.total_domain_size, 11);
        assert_eq!(p.max_domain_size, 3);
        // All 6 of the C(4,2) pairs are constrained: a complete graph.
        assert!((p.density - 1.0).abs() < 1e-12);
        assert_eq!(p.components, 1);
        // K4 has width 3 and induced width 3.
        assert_eq!(p.width, 3);
        assert_eq!(p.induced_width, 3);
        assert!(!p.is_forest);
        // Every constraint forbids most pairs, so tightness is high.
        assert!(p.mean_tightness > 0.5);
        assert!(p.to_string().contains("vars=4"));
    }

    #[test]
    fn chain_is_a_width_one_forest() {
        let net = chain(6);
        let p = profile(&net);
        assert_eq!(p.components, 1);
        assert!(p.is_forest);
        assert_eq!(p.width, 1);
        assert_eq!(p.induced_width, 1);
        assert!(p.density < 0.5);
    }

    #[test]
    fn disconnected_components_are_separated() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![0, 1]);
        let d = net.add_variable("d", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0)]).unwrap();
        net.add_constraint(c, d, vec![(1, 1)]).unwrap();
        let components = connected_components(&net);
        assert_eq!(components.len(), 2);
        assert_eq!(components[0], vec![a, b]);
        assert_eq!(components[1], vec![c, d]);
        assert!(is_forest(&net));
        // An isolated variable forms its own component.
        let mut net2: ConstraintNetwork<i32> = ConstraintNetwork::new();
        net2.add_variable("solo", vec![0]);
        assert_eq!(connected_components(&net2).len(), 1);
        assert_eq!(profile(&net2).components, 1);
    }

    #[test]
    fn degrees_match_the_graph() {
        let (net, vars) = paper_network();
        let d = degrees(&net);
        assert_eq!(d, vec![3, 3, 3, 3]);
        let net2 = chain(4);
        assert_eq!(degrees(&net2), vec![1, 2, 2, 1]);
        let _ = vars;
    }

    #[test]
    fn orderings_cover_every_variable_once() {
        let (net, _) = paper_network();
        for ordering in [min_width_ordering(&net), min_degree_ordering(&net)] {
            let mut sorted = ordering.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), net.variable_count());
        }
    }

    #[test]
    fn induced_width_is_at_least_width() {
        for len in [2usize, 5, 9] {
            let net = chain(len);
            let order = min_degree_ordering(&net);
            assert!(induced_width(&net, &order) >= ordering_width(&net, &order).min(1) - 1);
            assert_eq!(induced_width(&net, &order), 1);
        }
    }

    #[test]
    fn star_graph_width_is_one_with_centre_first() {
        // A star: centre constrained with every leaf.  Putting the centre
        // first gives width 1; the min-width ordering must find that.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let centre = net.add_variable("centre", vec![0, 1]);
        let leaves: Vec<VarId> = (0..5)
            .map(|i| net.add_variable(format!("leaf{i}"), vec![0, 1]))
            .collect();
        for &l in &leaves {
            net.add_constraint(centre, l, vec![(0, 1), (1, 0)]).unwrap();
        }
        let ordering = min_width_ordering(&net);
        assert_eq!(ordering_width(&net, &ordering), 1);
        assert!(is_forest(&net));
        let p = profile(&net);
        assert_eq!(p.width, 1);
        assert_eq!(p.induced_width, 1);
    }

    #[test]
    fn empty_and_single_variable_networks() {
        let net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let p = profile(&net);
        assert_eq!(p.variables, 0);
        assert_eq!(p.width, 0);
        assert_eq!(p.induced_width, 0);
        assert_eq!(p.components, 0);
        assert!(p.is_forest);
        assert_eq!(p.density, 0.0);
        assert_eq!(p.mean_tightness, 0.0);
    }

    #[test]
    #[should_panic(expected = "every variable")]
    fn ordering_width_rejects_short_orderings() {
        let (net, vars) = paper_network();
        let _ = ordering_width(&net, &vars[..2]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn ordering_width_rejects_duplicates() {
        let (net, vars) = paper_network();
        let bad = vec![vars[0], vars[0], vars[1], vars[2]];
        let _ = ordering_width(&net, &bad);
    }
}
