//! Runtime-dispatched word-lane kernels for the bit-matrix hot loops.
//!
//! Every solver path — AC-3 fixpoints, forward checking, enumeration,
//! weighted branch and bound, the work-stealing frame workers — bottoms out
//! in a handful of word-wise primitives over `u64` slices: AND-test,
//! AND-popcount, ANDNOT-popcount, and AND-assign-with-removal-count.  This
//! module provides each primitive in two implementations:
//!
//! * **`scalar`** — one word at a time, the portable default.
//! * **`lanes`** — 4-wide unrolled over [`LANE_WORDS`]-word blocks with
//!   independent accumulators.  On `x86_64` the same code is additionally
//!   compiled under `#[target_feature(enable = "avx2,popcnt")]` so LLVM can
//!   emit 256-bit vector loads/ANDs and hardware popcounts; elsewhere the
//!   unrolled portable form is used as-is.
//!
//! The backend is selected **once** at first use: `MLO_FORCE_SCALAR` (set to
//! anything but `0`/empty) pins the scalar path, otherwise
//! `is_x86_feature_detected!("avx2")` + `popcnt` picks the vector path on
//! `x86_64` and scalar stays the portable default everywhere else.  All
//! implementations compute **bit-identical** results by construction — they
//! are exact integer reductions of the same word stream, only the traversal
//! is reassociated — so switching backends can never change a solver answer,
//! a support count, or a statistics counter.
//!
//! [`DomainShape`](crate::bitset::DomainShape) pads every variable's word
//! span and every bit-matrix row stride to a multiple of [`LANE_WORDS`], so
//! the hot loops below run with an empty remainder and rows stay block
//! aligned (cache-line friendly when walked block-major).

// The crate denies unsafe code; the runtime-detected `#[target_feature]`
// call sites below are the sanctioned exception (see `lib.rs`).
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Words per unrolled lane block.  Domain word spans and bit-matrix row
/// strides are padded to a multiple of this (see
/// [`crate::bitset::DomainShape`]), so a 256-bit AVX2 register holds exactly
/// one block.
pub const LANE_WORDS: usize = 4;

/// Which implementation family the process-wide dispatch uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One word at a time (the portable default, and what
    /// `MLO_FORCE_SCALAR` pins).
    Scalar,
    /// 4-wide unrolled lanes; compiled with AVX2+POPCNT enabled when the
    /// running CPU supports them.
    Simd,
}

const UNINIT: u8 = 0;
const SCALAR: u8 = 1;
/// Portable unrolled lanes (forced SIMD on a CPU without AVX2, or any
/// non-x86_64 target).
const LANES: u8 = 2;
/// Unrolled lanes compiled under `avx2,popcnt` (x86_64 with detection).
const LANES_X86: u8 = 3;

static BACKEND: AtomicU8 = AtomicU8::new(UNINIT);

fn detect() -> u8 {
    if std::env::var_os("MLO_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
        return SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("popcnt")
        {
            return LANES_X86;
        }
    }
    SCALAR
}

#[inline]
fn code() -> u8 {
    let current = BACKEND.load(Ordering::Relaxed);
    if current != UNINIT {
        return current;
    }
    let detected = detect();
    // A concurrent first caller may race; both compute the same value.
    BACKEND.store(detected, Ordering::Relaxed);
    detected
}

/// The backend the dispatching entry points currently use.
pub fn active_backend() -> Backend {
    if code() == SCALAR {
        Backend::Scalar
    } else {
        Backend::Simd
    }
}

/// Pins the dispatch to one backend (test/bench hook; the equivalence
/// proptests run whole solves under each).  Forcing [`Backend::Simd`] on a
/// CPU without AVX2 uses the portable unrolled lanes — still bit-identical.
pub fn force_backend(backend: Backend) {
    let value = match backend {
        Backend::Scalar => SCALAR,
        Backend::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("popcnt")
                {
                    LANES_X86
                } else {
                    LANES
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                LANES
            }
        }
    };
    BACKEND.store(value, Ordering::Relaxed);
}

/// One-word-at-a-time reference implementations (the portable default).
pub mod scalar {
    /// Whether any word of `a & b` is nonzero.
    #[inline]
    pub fn and_any(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(x, y)| x & y != 0)
    }

    /// Whether any word of `a` is nonzero.
    #[inline]
    pub fn any_set(a: &[u64]) -> bool {
        a.iter().any(|&x| x != 0)
    }

    /// Total popcount of `a`.
    #[inline]
    pub fn popcount(a: &[u64]) -> u64 {
        a.iter().map(|&x| u64::from(x.count_ones())).sum()
    }

    /// Popcount of `a & b`.
    #[inline]
    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum()
    }

    /// Whether any word of `a & !b` is nonzero (an `a &= b` would remove
    /// something).
    #[inline]
    pub fn andnot_any(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(x, y)| x & !y != 0)
    }

    /// Popcount of `a & !b` (how many bits an `a &= b` would remove).
    #[inline]
    pub fn andnot_popcount(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| u64::from((x & !y).count_ones()))
            .sum()
    }

    /// `dst &= src` word-wise; returns how many bits were cleared.
    #[inline]
    pub fn and_assign_count(dst: &mut [u64], src: &[u64]) -> u64 {
        let mut removed = 0u64;
        for (d, s) in dst.iter_mut().zip(src) {
            let before = *d;
            *d &= s;
            removed += u64::from((before ^ *d).count_ones());
        }
        removed
    }

    /// Max of `row[i]` over the set bits of `a & b`, with the first index
    /// attaining it.  Empty mask (or a mask of NaN/`-inf`-only entries)
    /// returns `(f64::NEG_INFINITY, u32::MAX)`.  Ties keep the lowest
    /// index (strict `>` update) and NaN entries are never selected, so
    /// the result is deterministic for any row contents.
    #[inline]
    pub fn masked_row_max(row: &[f64], a: &[u64], b: &[u64]) -> (f64, u32) {
        let n = a.len().min(b.len());
        let mut best = f64::NEG_INFINITY;
        let mut arg = u32::MAX;
        for wi in 0..n {
            let mut m = a[wi] & b[wi];
            while m != 0 {
                let i = wi * 64 + m.trailing_zeros() as usize;
                if i >= row.len() {
                    return (best, arg);
                }
                let w = row[i];
                if w > best {
                    best = w;
                    arg = i as u32;
                }
                m &= m - 1;
            }
        }
        (best, arg)
    }
}

/// 4-wide unrolled lane implementations.  Same reductions as [`scalar`]
/// with the traversal reassociated into [`LANE_WORDS`]-word blocks and
/// independent accumulators; exact integer arithmetic keeps every result
/// bit-identical to the scalar path.
pub mod lanes {
    use super::LANE_WORDS;

    /// Whether any word of `a & b` is nonzero.
    #[inline(always)]
    pub fn and_any(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut ac = a.chunks_exact(LANE_WORDS);
        let mut bc = b.chunks_exact(LANE_WORDS);
        for (ca, cb) in (&mut ac).zip(&mut bc) {
            let or = (ca[0] & cb[0]) | (ca[1] & cb[1]) | (ca[2] & cb[2]) | (ca[3] & cb[3]);
            if or != 0 {
                return true;
            }
        }
        ac.remainder()
            .iter()
            .zip(bc.remainder())
            .any(|(x, y)| x & y != 0)
    }

    /// Whether any word of `a` is nonzero.
    #[inline(always)]
    pub fn any_set(a: &[u64]) -> bool {
        let mut chunks = a.chunks_exact(LANE_WORDS);
        for c in &mut chunks {
            if (c[0] | c[1] | c[2] | c[3]) != 0 {
                return true;
            }
        }
        chunks.remainder().iter().any(|&x| x != 0)
    }

    /// Total popcount of `a`.
    #[inline(always)]
    pub fn popcount(a: &[u64]) -> u64 {
        let mut acc = [0u64; LANE_WORDS];
        let mut chunks = a.chunks_exact(LANE_WORDS);
        for c in &mut chunks {
            acc[0] += u64::from(c[0].count_ones());
            acc[1] += u64::from(c[1].count_ones());
            acc[2] += u64::from(c[2].count_ones());
            acc[3] += u64::from(c[3].count_ones());
        }
        let tail: u64 = chunks
            .remainder()
            .iter()
            .map(|&x| u64::from(x.count_ones()))
            .sum();
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// Popcount of `a & b`.
    #[inline(always)]
    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut acc = [0u64; LANE_WORDS];
        let mut ac = a.chunks_exact(LANE_WORDS);
        let mut bc = b.chunks_exact(LANE_WORDS);
        for (ca, cb) in (&mut ac).zip(&mut bc) {
            acc[0] += u64::from((ca[0] & cb[0]).count_ones());
            acc[1] += u64::from((ca[1] & cb[1]).count_ones());
            acc[2] += u64::from((ca[2] & cb[2]).count_ones());
            acc[3] += u64::from((ca[3] & cb[3]).count_ones());
        }
        let tail: u64 = ac
            .remainder()
            .iter()
            .zip(bc.remainder())
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum();
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// Whether any word of `a & !b` is nonzero.
    #[inline(always)]
    pub fn andnot_any(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut ac = a.chunks_exact(LANE_WORDS);
        let mut bc = b.chunks_exact(LANE_WORDS);
        for (ca, cb) in (&mut ac).zip(&mut bc) {
            let or = (ca[0] & !cb[0]) | (ca[1] & !cb[1]) | (ca[2] & !cb[2]) | (ca[3] & !cb[3]);
            if or != 0 {
                return true;
            }
        }
        ac.remainder()
            .iter()
            .zip(bc.remainder())
            .any(|(x, y)| x & !y != 0)
    }

    /// Popcount of `a & !b`.
    #[inline(always)]
    pub fn andnot_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut acc = [0u64; LANE_WORDS];
        let mut ac = a.chunks_exact(LANE_WORDS);
        let mut bc = b.chunks_exact(LANE_WORDS);
        for (ca, cb) in (&mut ac).zip(&mut bc) {
            acc[0] += u64::from((ca[0] & !cb[0]).count_ones());
            acc[1] += u64::from((ca[1] & !cb[1]).count_ones());
            acc[2] += u64::from((ca[2] & !cb[2]).count_ones());
            acc[3] += u64::from((ca[3] & !cb[3]).count_ones());
        }
        let tail: u64 = ac
            .remainder()
            .iter()
            .zip(bc.remainder())
            .map(|(x, y)| u64::from((x & !y).count_ones()))
            .sum();
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// `dst &= src` word-wise; returns how many bits were cleared.
    #[inline(always)]
    pub fn and_assign_count(dst: &mut [u64], src: &[u64]) -> u64 {
        let n = dst.len().min(src.len());
        let (dst, src) = (&mut dst[..n], &src[..n]);
        let mut acc = [0u64; LANE_WORDS];
        let mut dc = dst.chunks_exact_mut(LANE_WORDS);
        let mut sc = src.chunks_exact(LANE_WORDS);
        for (cd, cs) in (&mut dc).zip(&mut sc) {
            let b0 = cd[0];
            let b1 = cd[1];
            let b2 = cd[2];
            let b3 = cd[3];
            cd[0] &= cs[0];
            cd[1] &= cs[1];
            cd[2] &= cs[2];
            cd[3] &= cs[3];
            acc[0] += u64::from((b0 ^ cd[0]).count_ones());
            acc[1] += u64::from((b1 ^ cd[1]).count_ones());
            acc[2] += u64::from((b2 ^ cd[2]).count_ones());
            acc[3] += u64::from((b3 ^ cd[3]).count_ones());
        }
        let mut tail = 0u64;
        for (d, s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            let before = *d;
            *d &= s;
            tail += u64::from((before ^ *d).count_ones());
        }
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// Max of `row[i]` over the set bits of `a & b`, with the first index
    /// attaining it.  Blocks are skipped on a single lane-wide OR test;
    /// words are then walked in ascending order with the same strict-`>`
    /// update as [`super::scalar::masked_row_max`], so ties, NaN handling
    /// and the returned argmax are bit-identical to the scalar path.
    #[inline(always)]
    pub fn masked_row_max(row: &[f64], a: &[u64], b: &[u64]) -> (f64, u32) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut best = f64::NEG_INFINITY;
        let mut arg = u32::MAX;
        let mut ac = a.chunks_exact(LANE_WORDS);
        let mut bc = b.chunks_exact(LANE_WORDS);
        let mut base = 0usize;
        for (ca, cb) in (&mut ac).zip(&mut bc) {
            let m0 = ca[0] & cb[0];
            let m1 = ca[1] & cb[1];
            let m2 = ca[2] & cb[2];
            let m3 = ca[3] & cb[3];
            if (m0 | m1 | m2 | m3) != 0 {
                for (wi, masked) in [m0, m1, m2, m3].into_iter().enumerate() {
                    let mut m = masked;
                    while m != 0 {
                        let i = base + wi * 64 + m.trailing_zeros() as usize;
                        if i >= row.len() {
                            return (best, arg);
                        }
                        let w = row[i];
                        if w > best {
                            best = w;
                            arg = i as u32;
                        }
                        m &= m - 1;
                    }
                }
            }
            base += LANE_WORDS * 64;
        }
        for (wi, (x, y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
            let mut m = x & y;
            while m != 0 {
                let i = base + wi * 64 + m.trailing_zeros() as usize;
                if i >= row.len() {
                    return (best, arg);
                }
                let w = row[i];
                if w > best {
                    best = w;
                    arg = i as u32;
                }
                m &= m - 1;
            }
        }
        (best, arg)
    }
}

/// The [`lanes`] implementations recompiled with AVX2 + POPCNT enabled so
/// LLVM vectorizes the unrolled blocks; entered only after
/// `is_x86_feature_detected!` confirmed support.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::lanes;

    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_any(a: &[u64], b: &[u64]) -> bool {
        lanes::and_any(a, b)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn any_set(a: &[u64]) -> bool {
        lanes::any_set(a)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn popcount(a: &[u64]) -> u64 {
        lanes::popcount(a)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        lanes::and_popcount(a, b)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn andnot_any(a: &[u64], b: &[u64]) -> bool {
        lanes::andnot_any(a, b)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn andnot_popcount(a: &[u64], b: &[u64]) -> u64 {
        lanes::andnot_popcount(a, b)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_assign_count(dst: &mut [u64], src: &[u64]) -> u64 {
        lanes::and_assign_count(dst, src)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn masked_row_max(row: &[f64], a: &[u64], b: &[u64]) -> (f64, u32) {
        lanes::masked_row_max(row, a, b)
    }
}

macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {
        match code() {
            SCALAR => scalar::$name($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: LANES_X86 is only ever stored after
            // `is_x86_feature_detected!` confirmed avx2 + popcnt.
            LANES_X86 => unsafe { x86::$name($($arg),*) },
            _ => lanes::$name($($arg),*),
        }
    };
}

/// Whether any word of `a & b` is nonzero (dispatching).
#[inline]
pub fn and_any(a: &[u64], b: &[u64]) -> bool {
    dispatch!(and_any(a, b))
}

/// Whether any word of `a` is nonzero (dispatching).
#[inline]
pub fn any_set(a: &[u64]) -> bool {
    dispatch!(any_set(a))
}

/// Total popcount of `a` (dispatching).
#[inline]
pub fn popcount(a: &[u64]) -> u64 {
    dispatch!(popcount(a))
}

/// Popcount of `a & b` (dispatching).
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    dispatch!(and_popcount(a, b))
}

/// Whether any word of `a & !b` is nonzero (dispatching).
#[inline]
pub fn andnot_any(a: &[u64], b: &[u64]) -> bool {
    dispatch!(andnot_any(a, b))
}

/// Popcount of `a & !b` (dispatching).
#[inline]
pub fn andnot_popcount(a: &[u64], b: &[u64]) -> u64 {
    dispatch!(andnot_popcount(a, b))
}

/// `dst &= src`; returns how many bits were cleared (dispatching).
#[inline]
pub fn and_assign_count(dst: &mut [u64], src: &[u64]) -> u64 {
    dispatch!(and_assign_count(dst, src))
}

/// Max of `row[i]` over the set bits of `a & b`, plus the first index
/// attaining it; `(f64::NEG_INFINITY, u32::MAX)` on an empty mask
/// (dispatching).
#[inline]
pub fn masked_row_max(row: &[f64], a: &[u64], b: &[u64]) -> (f64, u32) {
    dispatch!(masked_row_max(row, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic word-stream generator (no external RNG: the crate's
    /// proptests cover randomized inputs at the network level).
    fn words(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    #[test]
    fn lanes_match_scalar_on_all_lengths() {
        for len in 0..=19 {
            for seed in 1..=8u64 {
                let a = words(seed, len);
                let b = words(seed.wrapping_add(100), len);
                assert_eq!(scalar::and_any(&a, &b), lanes::and_any(&a, &b));
                assert_eq!(scalar::any_set(&a), lanes::any_set(&a));
                assert_eq!(scalar::popcount(&a), lanes::popcount(&a));
                assert_eq!(scalar::and_popcount(&a, &b), lanes::and_popcount(&a, &b));
                assert_eq!(scalar::andnot_any(&a, &b), lanes::andnot_any(&a, &b));
                assert_eq!(
                    scalar::andnot_popcount(&a, &b),
                    lanes::andnot_popcount(&a, &b)
                );
                let mut d1 = a.clone();
                let mut d2 = a.clone();
                let r1 = scalar::and_assign_count(&mut d1, &b);
                let r2 = lanes::and_assign_count(&mut d2, &b);
                assert_eq!(r1, r2);
                assert_eq!(d1, d2);
                let row = row_for(seed, len * 64);
                let (sv, sa) = scalar::masked_row_max(&row, &a, &b);
                let (lv, la) = lanes::masked_row_max(&row, &a, &b);
                assert_eq!(sv.to_bits(), lv.to_bits());
                assert_eq!(sa, la);
            }
        }
    }

    /// A dense weight row with repeated values so ties are exercised.
    fn row_for(seed: u64, len: usize) -> Vec<f64> {
        words(seed.wrapping_add(7), len)
            .into_iter()
            .map(|w| f64::from((w % 17) as u32))
            .collect()
    }

    #[test]
    fn masked_row_max_edge_cases() {
        // Empty mask.
        let row = vec![1.0, 2.0, 3.0];
        let z = vec![0u64; 4];
        let ones = vec![u64::MAX; 4];
        assert_eq!(
            scalar::masked_row_max(&row, &z, &ones),
            (f64::NEG_INFINITY, u32::MAX)
        );
        assert_eq!(
            lanes::masked_row_max(&row, &z, &ones),
            (f64::NEG_INFINITY, u32::MAX)
        );
        // Ties keep the lowest index on both paths.
        let row = vec![5.0, 7.0, 7.0, 1.0];
        let mask = vec![0b1111u64];
        assert_eq!(scalar::masked_row_max(&row, &mask, &mask), (7.0, 1));
        assert_eq!(lanes::masked_row_max(&row, &mask, &mask), (7.0, 1));
        // Bits beyond the row length are ignored.
        let wide = vec![u64::MAX; 2];
        assert_eq!(scalar::masked_row_max(&row, &wide, &wide), (7.0, 1));
        assert_eq!(lanes::masked_row_max(&row, &wide, &wide), (7.0, 1));
        // NaN entries are never selected; an all-NaN mask yields the
        // empty-mask sentinel.
        let row = vec![f64::NAN, 2.0, f64::NAN];
        let mask = vec![0b111u64];
        assert_eq!(scalar::masked_row_max(&row, &mask, &mask), (2.0, 1));
        assert_eq!(lanes::masked_row_max(&row, &mask, &mask), (2.0, 1));
        let nan_only = vec![0b101u64];
        let (v, i) = scalar::masked_row_max(&row, &nan_only, &nan_only);
        assert!(v == f64::NEG_INFINITY && i == u32::MAX);
        let (v, i) = lanes::masked_row_max(&row, &nan_only, &nan_only);
        assert!(v == f64::NEG_INFINITY && i == u32::MAX);
    }

    #[test]
    fn mismatched_lengths_use_the_common_prefix() {
        let a = words(3, 11);
        let b = words(4, 7);
        assert_eq!(scalar::and_popcount(&a, &b), lanes::and_popcount(&a, &b));
        assert_eq!(
            scalar::andnot_popcount(&a, &b),
            lanes::andnot_popcount(&a, &b)
        );
        let mut d1 = a.clone();
        let mut d2 = a.clone();
        assert_eq!(
            scalar::and_assign_count(&mut d1, &b),
            lanes::and_assign_count(&mut d2, &b)
        );
        assert_eq!(d1, d2);
        // Words past the common prefix are untouched.
        assert_eq!(&d1[7..], &a[7..]);
    }

    #[test]
    fn zero_vectors_behave() {
        let z = vec![0u64; 8];
        let a = words(9, 8);
        assert!(!lanes::and_any(&a, &z));
        assert!(!lanes::any_set(&z));
        assert_eq!(lanes::and_popcount(&a, &z), 0);
        assert_eq!(lanes::andnot_popcount(&a, &z), lanes::popcount(&a));
        assert!(!lanes::andnot_any(&a, &a));
    }

    #[test]
    fn force_backend_round_trips() {
        let original = active_backend();
        force_backend(Backend::Scalar);
        assert_eq!(active_backend(), Backend::Scalar);
        force_backend(Backend::Simd);
        assert_eq!(active_backend(), Backend::Simd);
        // Dispatch agrees with the reference implementations either way.
        let a = words(5, 12);
        let b = words(6, 12);
        assert_eq!(and_popcount(&a, &b), scalar::and_popcount(&a, &b));
        let row = row_for(5, 12 * 64);
        assert_eq!(
            masked_row_max(&row, &a, &b),
            scalar::masked_row_max(&row, &a, &b)
        );
        force_backend(original);
    }
}
