//! Binary constraints: the allowable value pairs for two variables.

use crate::network::VarId;
use std::collections::HashSet;
use std::fmt;

/// A binary constraint `S_ij` between two variables, stored as the set of
/// allowed `(value-index, value-index)` pairs.
///
/// The pair orientation follows the constraint's `(first, second)` variable
/// order; [`BinaryConstraint::allows`] accepts queries in either orientation
/// so callers never have to worry about which endpoint was declared first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryConstraint {
    first: VarId,
    second: VarId,
    allowed: HashSet<(usize, usize)>,
}

impl BinaryConstraint {
    /// Creates a constraint from allowed index pairs (oriented
    /// `first → second`).
    pub fn new(first: VarId, second: VarId, allowed: HashSet<(usize, usize)>) -> Self {
        BinaryConstraint {
            first,
            second,
            allowed,
        }
    }

    /// The first endpoint.
    pub fn first(&self) -> VarId {
        self.first
    }

    /// The second endpoint.
    pub fn second(&self) -> VarId {
        self.second
    }

    /// Both endpoints.
    pub fn scope(&self) -> (VarId, VarId) {
        (self.first, self.second)
    }

    /// Whether this constraint involves the given variable.
    pub fn involves(&self, var: VarId) -> bool {
        self.first == var || self.second == var
    }

    /// The other endpoint, given one of them.
    ///
    /// Returns `None` when `var` is not in the scope.
    pub fn other(&self, var: VarId) -> Option<VarId> {
        if var == self.first {
            Some(self.second)
        } else if var == self.second {
            Some(self.first)
        } else {
            None
        }
    }

    /// The raw allowed pairs, oriented `first → second`.
    pub fn allowed_pairs(&self) -> &HashSet<(usize, usize)> {
        &self.allowed
    }

    /// Number of allowed pairs.
    pub fn pair_count(&self) -> usize {
        self.allowed.len()
    }

    /// Whether assigning `value_a` to `var_a` and `value_b` to `var_b`
    /// satisfies the constraint.  The variables may be given in either
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when `{var_a, var_b}` is not the constraint's scope.
    pub fn allows(&self, var_a: VarId, value_a: usize, var_b: VarId, value_b: usize) -> bool {
        if var_a == self.first && var_b == self.second {
            self.allowed.contains(&(value_a, value_b))
        } else if var_a == self.second && var_b == self.first {
            self.allowed.contains(&(value_b, value_a))
        } else {
            panic!(
                "constraint between {} and {} queried with {var_a} and {var_b}",
                self.first, self.second
            );
        }
    }

    /// Whether value `value` of variable `var` has at least one supporting
    /// value among `other_candidates` (indices into the other variable's
    /// domain).
    ///
    /// # Panics
    ///
    /// Panics when `var` is not in the constraint's scope.
    pub fn has_support(&self, var: VarId, value: usize, other_candidates: &[usize]) -> bool {
        other_candidates
            .iter()
            .any(|&o| self.supports(var, value, o))
    }

    /// Number of values among `other_candidates` compatible with
    /// `var = value`.
    ///
    /// # Panics
    ///
    /// Panics when `var` is not in the constraint's scope.
    pub fn support_count(&self, var: VarId, value: usize, other_candidates: &[usize]) -> usize {
        other_candidates
            .iter()
            .filter(|&&o| self.supports(var, value, o))
            .count()
    }

    fn supports(&self, var: VarId, value: usize, other_value: usize) -> bool {
        if var == self.first {
            self.allowed.contains(&(value, other_value))
        } else if var == self.second {
            self.allowed.contains(&(other_value, value))
        } else {
            panic!(
                "variable {var} not in constraint scope ({}, {})",
                self.first, self.second
            );
        }
    }
}

impl fmt::Display for BinaryConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut pairs: Vec<&(usize, usize)> = self.allowed.iter().collect();
        pairs.sort();
        write!(f, "S({}, {}) = {{", self.first, self.second)?;
        for (i, (a, b)) in pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{a}, {b}]")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraint() -> BinaryConstraint {
        let mut allowed = HashSet::new();
        allowed.insert((0, 1));
        allowed.insert((1, 0));
        BinaryConstraint::new(VarId::new(0), VarId::new(1), allowed)
    }

    #[test]
    fn scope_queries() {
        let c = constraint();
        assert_eq!(c.scope(), (VarId::new(0), VarId::new(1)));
        assert!(c.involves(VarId::new(0)));
        assert!(c.involves(VarId::new(1)));
        assert!(!c.involves(VarId::new(2)));
        assert_eq!(c.other(VarId::new(0)), Some(VarId::new(1)));
        assert_eq!(c.other(VarId::new(1)), Some(VarId::new(0)));
        assert_eq!(c.other(VarId::new(5)), None);
        assert_eq!(c.pair_count(), 2);
    }

    #[test]
    fn allows_in_both_orientations() {
        let c = constraint();
        assert!(c.allows(VarId::new(0), 0, VarId::new(1), 1));
        assert!(c.allows(VarId::new(1), 1, VarId::new(0), 0));
        assert!(!c.allows(VarId::new(0), 0, VarId::new(1), 0));
        assert!(!c.allows(VarId::new(1), 1, VarId::new(0), 1));
    }

    #[test]
    #[should_panic(expected = "queried with")]
    fn allows_panics_outside_scope() {
        let c = constraint();
        let _ = c.allows(VarId::new(0), 0, VarId::new(2), 0);
    }

    #[test]
    fn support_queries() {
        let c = constraint();
        // Value 0 of the first variable is supported only by value 1 of the
        // second.
        assert!(c.has_support(VarId::new(0), 0, &[0, 1]));
        assert!(!c.has_support(VarId::new(0), 0, &[0]));
        assert_eq!(c.support_count(VarId::new(0), 0, &[0, 1]), 1);
        assert_eq!(c.support_count(VarId::new(1), 0, &[0, 1]), 1);
        assert_eq!(c.support_count(VarId::new(1), 1, &[0]), 1);
        assert_eq!(c.support_count(VarId::new(1), 1, &[1]), 0);
    }

    #[test]
    fn display_is_sorted_and_readable() {
        let c = constraint();
        assert_eq!(c.to_string(), "S(x0, x1) = {[0, 1], [1, 0]}");
    }
}
