//! The constraint network itself: variables, domains and constraints.

use crate::assignment::Assignment;
use crate::constraint::BinaryConstraint;
use crate::domain::Domain;
use crate::{CspError, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifies a variable of a [`ConstraintNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VarId(usize);

impl VarId {
    /// Creates an id from a raw index.
    pub const fn new(index: usize) -> Self {
        VarId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<usize> for VarId {
    fn from(index: usize) -> Self {
        VarId(index)
    }
}

/// A binary constraint network `<P, M, S>`.
///
/// See the [crate-level documentation](crate) for the correspondence with
/// the paper and a complete example.
#[derive(Debug, Clone)]
pub struct ConstraintNetwork<V> {
    names: Vec<String>,
    domains: Vec<Domain<V>>,
    constraints: Vec<BinaryConstraint>,
    /// For each variable, the indices of the constraints that involve it.
    adjacency: Vec<Vec<usize>>,
}

impl<V: Value> Default for ConstraintNetwork<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> ConstraintNetwork<V> {
    /// Creates an empty network.
    pub fn new() -> Self {
        ConstraintNetwork {
            names: Vec::new(),
            domains: Vec::new(),
            constraints: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Adds a variable with the given name and domain values; returns its id.
    pub fn add_variable(&mut self, name: impl Into<String>, domain: Vec<V>) -> VarId {
        let id = VarId::new(self.domains.len());
        self.names.push(name.into());
        self.domains.push(Domain::new(domain));
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds (or extends) the binary constraint between `a` and `b` with the
    /// given allowed value pairs, each given as `(value of a, value of b)`.
    ///
    /// Adding a second constraint over the same pair of variables merges the
    /// allowed pairs (set union), mirroring how the paper accumulates one
    /// preferred pair per candidate loop restructuring.
    ///
    /// # Errors
    ///
    /// * [`CspError::SelfConstraint`] when `a == b`,
    /// * [`CspError::UnknownVariable`] when either id is out of range,
    /// * [`CspError::ValueNotInDomain`] when a pair mentions a value missing
    ///   from the corresponding domain.
    pub fn add_constraint(&mut self, a: VarId, b: VarId, pairs: Vec<(V, V)>) -> crate::Result<()> {
        if a == b {
            return Err(CspError::SelfConstraint(a));
        }
        self.check_var(a)?;
        self.check_var(b)?;
        let mut index_pairs = HashSet::with_capacity(pairs.len());
        for (va, vb) in pairs {
            let ia = self.domains[a.index()].index_of(&va).ok_or_else(|| {
                CspError::ValueNotInDomain {
                    variable: a,
                    value: format!("{va:?}"),
                }
            })?;
            let ib = self.domains[b.index()].index_of(&vb).ok_or_else(|| {
                CspError::ValueNotInDomain {
                    variable: b,
                    value: format!("{vb:?}"),
                }
            })?;
            index_pairs.insert((ia, ib));
        }
        self.add_constraint_by_index(a, b, index_pairs)
    }

    /// Adds (or merges) a constraint given directly as value-index pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConstraintNetwork::add_constraint`], with
    /// [`CspError::ValueIndexOutOfRange`] replacing the missing-value error.
    pub fn add_constraint_by_index(
        &mut self,
        a: VarId,
        b: VarId,
        pairs: HashSet<(usize, usize)>,
    ) -> crate::Result<()> {
        if a == b {
            return Err(CspError::SelfConstraint(a));
        }
        self.check_var(a)?;
        self.check_var(b)?;
        for &(ia, ib) in &pairs {
            if ia >= self.domains[a.index()].len() {
                return Err(CspError::ValueIndexOutOfRange {
                    variable: a,
                    index: ia,
                    domain_size: self.domains[a.index()].len(),
                });
            }
            if ib >= self.domains[b.index()].len() {
                return Err(CspError::ValueIndexOutOfRange {
                    variable: b,
                    index: ib,
                    domain_size: self.domains[b.index()].len(),
                });
            }
        }
        // Merge with an existing constraint over the same scope if present.
        if let Some(ci) = self.constraint_index_between(a, b) {
            let existing = &self.constraints[ci];
            let mut merged = existing.allowed_pairs().clone();
            if existing.first() == a {
                merged.extend(pairs);
            } else {
                merged.extend(pairs.into_iter().map(|(x, y)| (y, x)));
            }
            let (fst, snd) = (existing.first(), existing.second());
            self.constraints[ci] = BinaryConstraint::new(fst, snd, merged);
            return Ok(());
        }
        let ci = self.constraints.len();
        self.constraints.push(BinaryConstraint::new(a, b, pairs));
        self.adjacency[a.index()].push(ci);
        self.adjacency[b.index()].push(ci);
        Ok(())
    }

    fn check_var(&self, v: VarId) -> crate::Result<()> {
        if v.index() >= self.domains.len() {
            Err(CspError::UnknownVariable(v))
        } else {
            Ok(())
        }
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.domains.len()
    }

    /// Iterator over all variable ids.
    pub fn variables(&self) -> impl Iterator<Item = VarId> {
        (0..self.domains.len()).map(VarId::new)
    }

    /// A variable's name.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// A variable's domain.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn domain(&self, var: VarId) -> &Domain<V> {
        &self.domains[var.index()]
    }

    /// All constraints.
    pub fn constraints(&self) -> &[BinaryConstraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The indices (into [`ConstraintNetwork::constraints`]) of the
    /// constraints involving `var`.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn constraints_of(&self, var: VarId) -> &[usize] {
        &self.adjacency[var.index()]
    }

    /// The constraint between two variables, if any.
    pub fn constraint_between(&self, a: VarId, b: VarId) -> Option<&BinaryConstraint> {
        self.constraint_index_between(a, b)
            .map(|i| &self.constraints[i])
    }

    fn constraint_index_between(&self, a: VarId, b: VarId) -> Option<usize> {
        if a == b || a.index() >= self.adjacency.len() || b.index() >= self.adjacency.len() {
            return None;
        }
        self.adjacency[a.index()]
            .iter()
            .copied()
            .find(|&ci| self.constraints[ci].involves(b))
    }

    /// The neighbours of `var` in the constraint graph (variables sharing at
    /// least one constraint with it).
    pub fn neighbours(&self, var: VarId) -> Vec<VarId> {
        let mut out = Vec::new();
        for &ci in self.constraints_of(var) {
            if let Some(o) = self.constraints[ci].other(var) {
                if !out.contains(&o) {
                    out.push(o);
                }
            }
        }
        out
    }

    /// The total search-space measure the paper's Table 1 calls *domain
    /// size*: the sum of the domain sizes of all variables.
    pub fn total_domain_size(&self) -> usize {
        self.domains.iter().map(Domain::len).sum()
    }

    /// The number of leaves of the naive search tree (product of domain
    /// sizes), as `f64` because it overflows quickly.
    pub fn search_space_size(&self) -> f64 {
        self.domains.iter().map(|d| d.len() as f64).product()
    }

    /// Checks whether assigning `value` (an index into the domain of `var`)
    /// is consistent with an existing partial assignment: every constraint
    /// between `var` and an already-assigned variable must allow the pair.
    ///
    /// This is the *consistent partial instantiation* test of the paper's
    /// Section 4.  The returned list contains the already-assigned variables
    /// that reject the value (empty means consistent).
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn conflicts_with(
        &self,
        assignment: &Assignment,
        var: VarId,
        value: usize,
        checks: &mut u64,
    ) -> Vec<VarId> {
        let mut conflicts = Vec::new();
        for &ci in self.constraints_of(var) {
            let c = &self.constraints[ci];
            let other = c.other(var).expect("constraint adjacency is consistent");
            if let Some(other_value) = assignment.get(other) {
                *checks += 1;
                if !c.allows(var, value, other, other_value) {
                    conflicts.push(other);
                }
            }
        }
        conflicts
    }

    /// Whether a *complete* assignment satisfies every constraint.
    ///
    /// # Errors
    ///
    /// Returns [`CspError::ValueIndexOutOfRange`] if any assigned index is
    /// outside its domain.
    pub fn is_solution(&self, assignment: &Assignment) -> crate::Result<bool> {
        if assignment.assigned_count() != self.variable_count() {
            return Ok(false);
        }
        for var in self.variables() {
            let value = assignment.get(var).expect("complete assignment");
            if value >= self.domain(var).len() {
                return Err(CspError::ValueIndexOutOfRange {
                    variable: var,
                    index: value,
                    domain_size: self.domain(var).len(),
                });
            }
        }
        for c in &self.constraints {
            let a = assignment.get(c.first()).expect("complete");
            let b = assignment.get(c.second()).expect("complete");
            if !c.allows(c.first(), a, c.second(), b) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Builds a copy of the network with the domain of `var` restricted to
    /// the given value indices (in the given order).
    ///
    /// Constraints keep their indices and orientation; allowed pairs whose
    /// `var` side was dropped disappear (a constraint may end up empty,
    /// making the restricted network trivially unsatisfiable).  This is the
    /// sharding primitive of the portfolio solver: partitioning one
    /// variable's domain across restricted copies partitions the whole
    /// search space.
    ///
    /// # Errors
    ///
    /// * [`CspError::UnknownVariable`] when `var` is out of range,
    /// * [`CspError::ValueIndexOutOfRange`] when `keep` mentions an index
    ///   outside the domain of `var`, or mentions the same index twice (a
    ///   duplicate would silently leave one domain copy unsupported).
    pub fn restricted(&self, var: VarId, keep: &[usize]) -> crate::Result<ConstraintNetwork<V>> {
        self.check_var(var)?;
        let domain_size = self.domains[var.index()].len();
        // Old index -> new index of the restricted variable's domain.
        let mut remap: HashMap<usize, usize> = HashMap::with_capacity(keep.len());
        for (new, &old) in keep.iter().enumerate() {
            if old >= domain_size || remap.insert(old, new).is_some() {
                return Err(CspError::ValueIndexOutOfRange {
                    variable: var,
                    index: old,
                    domain_size,
                });
            }
        }
        let mut out = ConstraintNetwork::new();
        for v in self.variables() {
            let values: Vec<V> = if v == var {
                keep.iter()
                    .map(|&i| self.domains[v.index()].value(i).clone())
                    .collect()
            } else {
                self.domains[v.index()].values().to_vec()
            };
            out.add_variable(self.names[v.index()].clone(), values);
        }
        for c in &self.constraints {
            let pairs: HashSet<(usize, usize)> = c
                .allowed_pairs()
                .iter()
                .filter_map(|&(a, b)| {
                    let a = if c.first() == var { *remap.get(&a)? } else { a };
                    let b = if c.second() == var {
                        *remap.get(&b)?
                    } else {
                        b
                    };
                    Some((a, b))
                })
                .collect();
            out.add_constraint_by_index(c.first(), c.second(), pairs)
                .expect("restricted pairs are in range by construction");
        }
        Ok(out)
    }

    /// Materializes an index assignment into the underlying values.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is incomplete or out of range.
    pub fn materialize(&self, assignment: &Assignment) -> Vec<V> {
        self.variables()
            .map(|v| {
                let idx = assignment
                    .get(v)
                    .expect("assignment must be complete to materialize");
                self.domain(v).value(idx).clone()
            })
            .collect()
    }
}

impl<V: Value + fmt::Display> fmt::Display for ConstraintNetwork<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "P = {{{}}}", self.names.join(", "))?;
        for (i, d) in self.domains.iter().enumerate() {
            writeln!(f, "M_{} ({}) = {}", i, self.names[i], d)?;
        }
        for c in &self.constraints {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example network of the paper's Section 3.
    pub(crate) fn paper_network() -> (ConstraintNetwork<(i64, i64)>, Vec<VarId>) {
        let mut net = ConstraintNetwork::new();
        let q1 = net.add_variable("Q1", vec![(1, 0), (0, 1), (1, 1)]);
        let q2 = net.add_variable("Q2", vec![(1, -1), (1, 1)]);
        let q3 = net.add_variable("Q3", vec![(0, 1), (1, 1), (1, 2)]);
        let q4 = net.add_variable("Q4", vec![(1, 0), (0, 1), (1, 1)]);
        net.add_constraint(q1, q2, vec![((1, 0), (1, 1)), ((0, 1), (1, -1))])
            .unwrap();
        net.add_constraint(
            q1,
            q3,
            vec![((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))],
        )
        .unwrap();
        net.add_constraint(q1, q4, vec![((1, 0), (1, 0)), ((0, 1), (0, 1))])
            .unwrap();
        net.add_constraint(q2, q3, vec![((1, 1), (0, 1)), ((1, -1), (1, 1))])
            .unwrap();
        // The paper's S24 lists [(1 0), (0 1)], but (1 0) is not in M2 (a typo
        // in the published example); (1 -1) keeps the published solution.
        net.add_constraint(q2, q4, vec![((1, -1), (0, 1)), ((1, 1), (1, 0))])
            .unwrap();
        net.add_constraint(q3, q4, vec![((0, 1), (1, 0))]).unwrap();
        (net, vec![q1, q2, q3, q4])
    }

    #[test]
    fn build_and_query_paper_network() {
        let (net, vars) = paper_network();
        assert_eq!(net.variable_count(), 4);
        assert_eq!(net.constraint_count(), 6);
        assert_eq!(net.total_domain_size(), 3 + 2 + 3 + 3);
        assert_eq!(net.search_space_size(), 54.0);
        assert_eq!(net.name(vars[0]), "Q1");
        assert_eq!(net.domain(vars[1]).len(), 2);
        assert_eq!(net.neighbours(vars[0]).len(), 3);
        assert!(net.constraint_between(vars[0], vars[3]).is_some());
        assert!(net.constraint_between(vars[0], vars[0]).is_none());
    }

    #[test]
    fn display_lists_domains_and_constraints() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("Q1", vec![1, 2]);
        let b = net.add_variable("Q2", vec![3]);
        net.add_constraint(a, b, vec![(1, 3)]).unwrap();
        let s = net.to_string();
        assert!(s.contains("P = {Q1, Q2}"));
        assert!(s.contains("M_0 (Q1) = {1, 2}"));
        assert!(s.contains("S(x0, x1)"));
    }

    #[test]
    fn constraint_errors() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![1, 2]);
        let b = net.add_variable("b", vec![3]);
        assert_eq!(
            net.add_constraint(a, a, vec![(1, 1)]),
            Err(CspError::SelfConstraint(a))
        );
        assert!(matches!(
            net.add_constraint(a, VarId::new(9), vec![(1, 3)]),
            Err(CspError::UnknownVariable(_))
        ));
        assert!(matches!(
            net.add_constraint(a, b, vec![(7, 3)]),
            Err(CspError::ValueNotInDomain { .. })
        ));
        let mut bad = HashSet::new();
        bad.insert((0usize, 5usize));
        assert!(matches!(
            net.add_constraint_by_index(a, b, bad),
            Err(CspError::ValueIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn constraints_merge_on_same_scope() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![1, 2]);
        let b = net.add_variable("b", vec![3, 4]);
        net.add_constraint(a, b, vec![(1, 3)]).unwrap();
        net.add_constraint(a, b, vec![(2, 4)]).unwrap();
        assert_eq!(net.constraint_count(), 1);
        assert_eq!(net.constraint_between(a, b).unwrap().pair_count(), 2);
        // Adding with the scope reversed also merges (orientation fixed up).
        net.add_constraint(b, a, vec![(3, 2)]).unwrap();
        assert_eq!(net.constraint_count(), 1);
        let c = net.constraint_between(a, b).unwrap();
        assert_eq!(c.pair_count(), 3);
        assert!(c.allows(a, 1, b, 0));
    }

    #[test]
    fn conflict_detection_matches_paper_solution() {
        let (net, vars) = paper_network();
        let mut asg = Assignment::new(net.variable_count());
        let mut checks = 0u64;
        // Assign Q1 = (1 0).
        asg.assign(vars[0], 0);
        // Q2 = (1 1) (index 1) is consistent with Q1=(1 0).
        assert!(net.conflicts_with(&asg, vars[1], 1, &mut checks).is_empty());
        // Q2 = (1 -1) (index 0) conflicts with Q1=(1 0).
        assert_eq!(
            net.conflicts_with(&asg, vars[1], 0, &mut checks),
            vec![vars[0]]
        );
        assert!(checks > 0);
    }

    #[test]
    fn restriction_partitions_the_search_space() {
        let (net, vars) = paper_network();
        // Restricting Q1 to its first value keeps the published solution.
        let shard = net.restricted(vars[0], &[0]).unwrap();
        assert_eq!(shard.domain(vars[0]).len(), 1);
        assert_eq!(shard.constraint_count(), net.constraint_count());
        assert_eq!(shard.domain(vars[0]).value(0), &(1, 0));
        // Q1-(1 0) pairs survive with remapped indices; others are gone.
        let c = shard.constraint_between(vars[0], vars[1]).unwrap();
        assert_eq!(c.pair_count(), 1);
        assert!(c.allows(vars[0], 0, vars[1], 1));
        // Out-of-range and duplicate restrictions are rejected.
        assert!(matches!(
            net.restricted(vars[0], &[9]),
            Err(CspError::ValueIndexOutOfRange { .. })
        ));
        assert!(matches!(
            net.restricted(vars[0], &[0, 0]),
            Err(CspError::ValueIndexOutOfRange { .. })
        ));
        assert!(matches!(
            net.restricted(VarId::new(99), &[0]),
            Err(CspError::UnknownVariable(_))
        ));
    }

    #[test]
    fn full_solution_check_and_materialization() {
        let (net, vars) = paper_network();
        let mut asg = Assignment::new(4);
        // The paper's stated solution.
        asg.assign(vars[0], 0); // (1 0)
        asg.assign(vars[1], 1); // (1 1)
        asg.assign(vars[2], 0); // (0 1)
        asg.assign(vars[3], 0); // (1 0)
        assert_eq!(net.is_solution(&asg), Ok(true));
        assert_eq!(net.materialize(&asg), vec![(1, 0), (1, 1), (0, 1), (1, 0)]);
        // Perturbing one value breaks it.
        asg.assign(vars[2], 1);
        assert_eq!(net.is_solution(&asg), Ok(false));
        // Incomplete assignments are never solutions.
        let partial = Assignment::new(4);
        assert_eq!(net.is_solution(&partial), Ok(false));
    }
}
