//! The constraint network itself: variables, domains and constraints.
//!
//! # Shared storage and copy-on-write
//!
//! A [`ConstraintNetwork`] is a thin handle over an [`Arc`]'d
//! [`NetworkStorage`]: cloning a network is a single reference-count bump,
//! never a deep copy of the domain/constraint tables.  Mutators
//! (`add_variable`, `add_constraint`, ...) are copy-on-write — they mutate
//! in place while the handle is unique (the normal building phase) and make
//! a private copy only when the storage is shared.  This is what lets the
//! parallel portfolio hand the same network to every racing member, and
//! batch sessions cache one network per program, without any per-solve
//! cloning.
//!
//! [`ConstraintNetwork::restricted`] produces a **mask-based view**: the
//! restricted network shares the *entire* storage with its parent — every
//! name, domain, constraint and adjacency table, by pointer — plus a tiny
//! [`DomainMask`] overlay recording which value indices are live.  Nothing
//! is remapped: a restricted view keeps the original domain indices (dead
//! ones simply never appear in solver iterations), so domain sharding — the
//! portfolio's space-partitioning primitive — allocates a few mask words
//! per split and **zero pair entries**, independent of the pair-table
//! volume.
//!
//! # The execution kernel
//!
//! Solvers do not probe the `HashSet` pair tables: the network lazily
//! compiles itself into a [`BitKernel`] (word-packed bit-matrices plus
//! per-value support counts, see [`crate::bitset`]) cached inside the
//! shared storage.  Clones, restricted views and session-cached networks
//! all reuse the identical kernel (`Arc::ptr_eq`-verifiable through
//! [`ConstraintNetwork::kernel`]).  Copy-on-write mutations recompile the
//! kernel **incrementally**: adding or extending a constraint rebuilds only
//! that constraint's bit-matrix and support counts (adding a variable
//! rebuilds none), with every untouched compiled matrix reused by pointer —
//! builder-heavy workloads no longer pay a full recompilation per tweak.

use crate::assignment::Assignment;
use crate::bitset::{BitKernel, DomainMask};
use crate::constraint::BinaryConstraint;
use crate::domain::Domain;
use crate::{CspError, Value};
use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifies a variable of a [`ConstraintNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VarId(usize);

impl VarId {
    /// Creates an id from a raw index.
    pub const fn new(index: usize) -> Self {
        VarId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<usize> for VarId {
    fn from(index: usize) -> Self {
        VarId(index)
    }
}

/// The shared tables behind a [`ConstraintNetwork`]: names, domains,
/// constraints and the per-variable adjacency lists.
///
/// Storage is structural-sharing friendly at two granularities: the whole
/// struct lives behind one `Arc` (so network clones are free and
/// [`ConstraintNetwork::shares_storage`] can assert wholesale sharing), and
/// each domain / constraint table is individually `Arc`'d (so restricted
/// views share every entry the restriction does not touch).
#[derive(Debug)]
pub struct NetworkStorage<V> {
    names: Arc<Vec<String>>,
    domains: Vec<Arc<Domain<V>>>,
    constraints: Vec<Arc<BinaryConstraint>>,
    /// For each variable, the indices of the constraints that involve it.
    adjacency: Arc<Vec<Vec<usize>>>,
    /// The compiled execution form (see [`crate::bitset`]), built lazily at
    /// most once per storage and shared by every handle over it.
    kernel: OnceLock<Arc<BitKernel>>,
}

impl<V> NetworkStorage<V> {
    fn empty() -> Self {
        NetworkStorage {
            names: Arc::new(Vec::new()),
            domains: Vec::new(),
            constraints: Vec::new(),
            adjacency: Arc::new(Vec::new()),
            kernel: OnceLock::new(),
        }
    }
}

impl<V: Clone> Clone for NetworkStorage<V> {
    fn clone(&self) -> Self {
        // Cloning storage only happens on the copy-on-write path (a handle
        // about to be mutated): the fork must not inherit a kernel compiled
        // from tables it is about to change.
        NetworkStorage {
            names: Arc::clone(&self.names),
            domains: self.domains.clone(),
            constraints: self.constraints.clone(),
            adjacency: Arc::clone(&self.adjacency),
            kernel: OnceLock::new(),
        }
    }
}

/// A binary constraint network `<P, M, S>`.
///
/// See the [crate-level documentation](crate) for the correspondence with
/// the paper and a complete example, and the [module docs](self) for the
/// shared-storage / copy-on-write representation.
#[derive(Debug, Clone)]
pub struct ConstraintNetwork<V> {
    storage: Arc<NetworkStorage<V>>,
    /// Live-domain overlay of a restricted view (`None` = every value of
    /// every domain is live).
    mask: Option<Arc<DomainMask>>,
}

impl<V: Value> Default for ConstraintNetwork<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> ConstraintNetwork<V> {
    /// Creates an empty network.
    pub fn new() -> Self {
        ConstraintNetwork {
            storage: Arc::new(NetworkStorage::empty()),
            mask: None,
        }
    }

    /// The shared storage handle.
    ///
    /// Two networks returning pointer-equal handles (`Arc::ptr_eq`) are
    /// guaranteed to be views of the identical tables; tests use this to
    /// verify that clones and cached artifacts share rather than copy.
    pub fn storage(&self) -> &Arc<NetworkStorage<V>> {
        &self.storage
    }

    /// Whether `self` and `other` share their entire storage (the
    /// post-clone state — no table was copied).  Restricted views share
    /// storage with their parent too: only their
    /// [`ConstraintNetwork::mask`] differs.
    pub fn shares_storage(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// The shared handle of one domain table (for structural-sharing
    /// assertions; use [`ConstraintNetwork::domain`] to read values).
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn domain_handle(&self, var: VarId) -> &Arc<Domain<V>> {
        &self.storage.domains[var.index()]
    }

    /// The shared handle of one constraint table (for structural-sharing
    /// assertions; use [`ConstraintNetwork::constraint`] to query pairs).
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    pub fn constraint_handle(&self, index: usize) -> &Arc<BinaryConstraint> {
        &self.storage.constraints[index]
    }

    /// Copy-on-write access to the storage: in-place while unique, a
    /// private copy (of the `Arc` spine only — the tables themselves are
    /// still shared until individually touched) once the storage is shared.
    ///
    /// Kernel recompilation is **incremental**: when the pre-mutation
    /// storage had a compiled kernel, the mutator computes a patched kernel
    /// (only the affected constraint's bit-matrix and support counts are
    /// rebuilt — see [`crate::bitset`]) and installs it here; otherwise the
    /// next solver run compiles from scratch as before.
    fn storage_mut_with_kernel(&mut self, patched: Option<BitKernel>) -> &mut NetworkStorage<V> {
        let storage = Arc::make_mut(&mut self.storage);
        storage.kernel.take();
        if let Some(kernel) = patched {
            let _ = storage.kernel.set(Arc::new(kernel));
        }
        storage
    }

    /// The compiled execution kernel of this network (word-packed
    /// bit-matrices and support counts, see [`crate::bitset`]), building it
    /// on first use and caching it inside the shared storage.
    ///
    /// Every handle over the same storage — clones, restricted views,
    /// session-cached networks — returns the *same* `Arc` (verify with
    /// `Arc::ptr_eq`); a restricted view differs from its parent only in
    /// its [`ConstraintNetwork::mask`].
    pub fn kernel(&self) -> &Arc<BitKernel> {
        self.storage.kernel.get_or_init(|| {
            Arc::new(BitKernel::build(
                self.storage.domains.iter().map(|d| d.len()).collect(),
                &self.storage.constraints,
                &self.storage.adjacency,
            ))
        })
    }

    /// The live-domain mask of a restricted view (`None` when every value
    /// is live — the network is not a restriction).
    pub fn mask(&self) -> Option<&Arc<DomainMask>> {
        self.mask.as_ref()
    }

    /// Number of *live* values of `var`: the full domain size unless a
    /// restriction masked some values off.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn live_count(&self, var: VarId) -> usize {
        let full = self.storage.domains[var.index()].len();
        match &self.mask {
            Some(mask) => mask.live_count(var, full),
            None => full,
        }
    }

    /// The live value indices of `var` in ascending order (original domain
    /// indices — masks never remap).
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn live_values(&self, var: VarId) -> Vec<usize> {
        let full = self.storage.domains[var.index()].len();
        match &self.mask {
            Some(mask) => mask.live_values(var, full),
            None => (0..full).collect(),
        }
    }

    /// Whether value `index` of `var` is live under this network's mask.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn is_live(&self, var: VarId, index: usize) -> bool {
        index < self.storage.domains[var.index()].len()
            && self.mask.as_ref().is_none_or(|m| m.is_live(var, index))
    }

    /// Adds a variable with the given name and domain values; returns its id.
    pub fn add_variable(&mut self, name: impl Into<String>, domain: Vec<V>) -> VarId {
        let name = name.into();
        let domain = Domain::new(domain);
        // Incremental recompilation: a fresh variable has no constraints,
        // so every compiled bit-matrix is reused — only the word layout and
        // adjacency grow.
        let patched = self
            .storage
            .kernel
            .get()
            .map(|kernel| kernel.with_added_variable(domain.len()));
        let storage = self.storage_mut_with_kernel(patched);
        let id = VarId::new(storage.domains.len());
        Arc::make_mut(&mut storage.names).push(name);
        storage.domains.push(Arc::new(domain));
        Arc::make_mut(&mut storage.adjacency).push(Vec::new());
        id
    }

    /// Adds (or extends) the binary constraint between `a` and `b` with the
    /// given allowed value pairs, each given as `(value of a, value of b)`.
    ///
    /// Adding a second constraint over the same pair of variables merges the
    /// allowed pairs (set union), mirroring how the paper accumulates one
    /// preferred pair per candidate loop restructuring.
    ///
    /// # Errors
    ///
    /// * [`CspError::SelfConstraint`] when `a == b`,
    /// * [`CspError::UnknownVariable`] when either id is out of range,
    /// * [`CspError::ValueNotInDomain`] when a pair mentions a value missing
    ///   from the corresponding domain.
    pub fn add_constraint(&mut self, a: VarId, b: VarId, pairs: Vec<(V, V)>) -> crate::Result<()> {
        if a == b {
            return Err(CspError::SelfConstraint(a));
        }
        self.check_var(a)?;
        self.check_var(b)?;
        let mut index_pairs = HashSet::with_capacity(pairs.len());
        for (va, vb) in pairs {
            let ia = self
                .domain(a)
                .index_of(&va)
                .ok_or_else(|| CspError::ValueNotInDomain {
                    variable: a,
                    value: format!("{va:?}"),
                })?;
            let ib = self
                .domain(b)
                .index_of(&vb)
                .ok_or_else(|| CspError::ValueNotInDomain {
                    variable: b,
                    value: format!("{vb:?}"),
                })?;
            index_pairs.insert((ia, ib));
        }
        self.add_constraint_by_index(a, b, index_pairs)
    }

    /// Adds (or merges) a constraint given directly as value-index pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConstraintNetwork::add_constraint`], with
    /// [`CspError::ValueIndexOutOfRange`] replacing the missing-value error.
    pub fn add_constraint_by_index(
        &mut self,
        a: VarId,
        b: VarId,
        pairs: HashSet<(usize, usize)>,
    ) -> crate::Result<()> {
        if a == b {
            return Err(CspError::SelfConstraint(a));
        }
        self.check_var(a)?;
        self.check_var(b)?;
        for &(ia, ib) in &pairs {
            if ia >= self.domain(a).len() {
                return Err(CspError::ValueIndexOutOfRange {
                    variable: a,
                    index: ia,
                    domain_size: self.domain(a).len(),
                });
            }
            if ib >= self.domain(b).len() {
                return Err(CspError::ValueIndexOutOfRange {
                    variable: b,
                    index: ib,
                    domain_size: self.domain(b).len(),
                });
            }
        }
        // Merge with an existing constraint over the same scope if present.
        if let Some(ci) = self.constraint_index_between(a, b) {
            let existing = &self.storage.constraints[ci];
            let mut merged = existing.allowed_pairs().clone();
            if existing.first() == a {
                merged.extend(pairs);
            } else {
                merged.extend(pairs.into_iter().map(|(x, y)| (y, x)));
            }
            let merged = BinaryConstraint::new(existing.first(), existing.second(), merged);
            // Incremental recompilation: only this constraint's bit-matrix
            // and support counts are rebuilt; every other compiled matrix
            // is reused by pointer.
            let patched = self
                .storage
                .kernel
                .get()
                .map(|kernel| kernel.with_patched_constraint(ci, &merged));
            let storage = self.storage_mut_with_kernel(patched);
            storage.constraints[ci] = Arc::new(merged);
            return Ok(());
        }
        let constraint = BinaryConstraint::new(a, b, pairs);
        // Incremental recompilation: compile just the new constraint's
        // matrix and append its two adjacency edges.
        let patched = self
            .storage
            .kernel
            .get()
            .map(|kernel| kernel.with_added_constraint(&constraint));
        let storage = self.storage_mut_with_kernel(patched);
        let ci = storage.constraints.len();
        storage.constraints.push(Arc::new(constraint));
        let adjacency = Arc::make_mut(&mut storage.adjacency);
        adjacency[a.index()].push(ci);
        adjacency[b.index()].push(ci);
        Ok(())
    }

    fn check_var(&self, v: VarId) -> crate::Result<()> {
        if v.index() >= self.storage.domains.len() {
            Err(CspError::UnknownVariable(v))
        } else {
            Ok(())
        }
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.storage.domains.len()
    }

    /// Iterator over all variable ids.
    pub fn variables(&self) -> impl Iterator<Item = VarId> {
        (0..self.storage.domains.len()).map(VarId::new)
    }

    /// A variable's name.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn name(&self, var: VarId) -> &str {
        &self.storage.names[var.index()]
    }

    /// A variable's domain.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn domain(&self, var: VarId) -> &Domain<V> {
        &self.storage.domains[var.index()]
    }

    /// All constraints, as shared table handles (deref to
    /// [`BinaryConstraint`]; indexing and iteration work as before).
    pub fn constraints(&self) -> &[Arc<BinaryConstraint>] {
        &self.storage.constraints
    }

    /// The constraint at `index`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    pub fn constraint(&self, index: usize) -> &BinaryConstraint {
        &self.storage.constraints[index]
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.storage.constraints.len()
    }

    /// The indices (into [`ConstraintNetwork::constraints`]) of the
    /// constraints involving `var`.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn constraints_of(&self, var: VarId) -> &[usize] {
        &self.storage.adjacency[var.index()]
    }

    /// The constraint between two variables, if any.
    pub fn constraint_between(&self, a: VarId, b: VarId) -> Option<&BinaryConstraint> {
        self.constraint_index_between(a, b)
            .map(|i| &*self.storage.constraints[i])
    }

    /// The index (into [`ConstraintNetwork::constraints`]) of the
    /// constraint between two variables, if any — an adjacency-list scan,
    /// `O(degree)` rather than `O(constraints)`.
    pub fn constraint_index_between(&self, a: VarId, b: VarId) -> Option<usize> {
        let adjacency = &self.storage.adjacency;
        if a == b || a.index() >= adjacency.len() || b.index() >= adjacency.len() {
            return None;
        }
        adjacency[a.index()]
            .iter()
            .copied()
            .find(|&ci| self.storage.constraints[ci].involves(b))
    }

    /// The neighbours of `var` in the constraint graph (variables sharing at
    /// least one constraint with it).
    pub fn neighbours(&self, var: VarId) -> Vec<VarId> {
        let mut out = Vec::new();
        for &ci in self.constraints_of(var) {
            if let Some(o) = self.storage.constraints[ci].other(var) {
                if !out.contains(&o) {
                    out.push(o);
                }
            }
        }
        out
    }

    /// The total search-space measure the paper's Table 1 calls *domain
    /// size*: the sum of the (live) domain sizes of all variables.
    pub fn total_domain_size(&self) -> usize {
        self.variables().map(|v| self.live_count(v)).sum()
    }

    /// The number of leaves of the naive search tree (product of live
    /// domain sizes), as `f64` because it overflows quickly.
    pub fn search_space_size(&self) -> f64 {
        self.variables()
            .map(|v| self.live_count(v) as f64)
            .product()
    }

    /// Checks whether assigning `value` (an index into the domain of `var`)
    /// is consistent with an existing partial assignment: every constraint
    /// between `var` and an already-assigned variable must allow the pair.
    ///
    /// This is the *consistent partial instantiation* test of the paper's
    /// Section 4.  The returned list contains the already-assigned variables
    /// that reject the value (empty means consistent).
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn conflicts_with(
        &self,
        assignment: &Assignment,
        var: VarId,
        value: usize,
        checks: &mut u64,
    ) -> Vec<VarId> {
        let mut conflicts = Vec::new();
        for &ci in self.constraints_of(var) {
            let c = &self.storage.constraints[ci];
            let other = c.other(var).expect("constraint adjacency is consistent");
            if let Some(other_value) = assignment.get(other) {
                *checks += 1;
                if !c.allows(var, value, other, other_value) {
                    conflicts.push(other);
                }
            }
        }
        conflicts
    }

    /// Whether a *complete* assignment satisfies every constraint.
    ///
    /// # Errors
    ///
    /// Returns [`CspError::ValueIndexOutOfRange`] if any assigned index is
    /// outside its domain.
    pub fn is_solution(&self, assignment: &Assignment) -> crate::Result<bool> {
        if assignment.assigned_count() != self.variable_count() {
            return Ok(false);
        }
        for var in self.variables() {
            let value = assignment.get(var).expect("complete assignment");
            if value >= self.domain(var).len() {
                return Err(CspError::ValueIndexOutOfRange {
                    variable: var,
                    index: value,
                    domain_size: self.domain(var).len(),
                });
            }
            // A masked-off value can never be part of a solution of the
            // restricted view.
            if !self.is_live(var, value) {
                return Ok(false);
            }
        }
        for c in &self.storage.constraints {
            let a = assignment.get(c.first()).expect("complete");
            let b = assignment.get(c.second()).expect("complete");
            if !c.allows(c.first(), a, c.second(), b) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Builds a **mask-based view** of the network with the domain of `var`
    /// restricted to the given value indices.
    ///
    /// The view shares the *entire* storage with `self` — every domain,
    /// constraint and adjacency table, and the compiled
    /// [`ConstraintNetwork::kernel`] — and carries only a small
    /// [`DomainMask`] overlay.  No pair entry is copied or remapped:
    /// **value indices are preserved**, so `keep` is treated as a set (its
    /// order is irrelevant) of original domain indices, and solutions of
    /// the view report the same indices the parent would.  Restricting an
    /// already-restricted view intersects the masks (again in original
    /// indices).  This is the sharding primitive of the portfolio solver:
    /// partitioning one variable's live values across views partitions the
    /// whole search space at the cost of a few mask words per shard.
    ///
    /// A restriction that keeps the full domain returns a plain clone
    /// ([`ConstraintNetwork::mask`] stays `None`).
    ///
    /// # Errors
    ///
    /// * [`CspError::UnknownVariable`] when `var` is out of range,
    /// * [`CspError::ValueIndexOutOfRange`] when `keep` mentions an index
    ///   outside the domain of `var`, or mentions the same index twice (a
    ///   duplicate usually indicates a buggy shard split).
    pub fn restricted(&self, var: VarId, keep: &[usize]) -> crate::Result<ConstraintNetwork<V>> {
        self.check_var(var)?;
        let domain_size = self.storage.domains[var.index()].len();
        let mut mask = match &self.mask {
            Some(existing) => (**existing).clone(),
            None => DomainMask::new(),
        };
        mask.restrict(var, domain_size, keep)
            .map_err(|index| CspError::ValueIndexOutOfRange {
                variable: var,
                index,
                domain_size,
            })?;
        // The identity restriction changes nothing: stay mask-free (or keep
        // the existing mask untouched).
        if keep.len() == domain_size && self.mask.is_none() {
            return Ok(self.clone());
        }
        Ok(ConstraintNetwork {
            storage: Arc::clone(&self.storage),
            mask: Some(Arc::new(mask)),
        })
    }

    /// Materializes an index assignment into the underlying values.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is incomplete or out of range.
    pub fn materialize(&self, assignment: &Assignment) -> Vec<V> {
        self.variables()
            .map(|v| {
                let idx = assignment
                    .get(v)
                    .expect("assignment must be complete to materialize");
                self.domain(v).value(idx).clone()
            })
            .collect()
    }
}

impl<V: Value + fmt::Display> fmt::Display for ConstraintNetwork<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let storage = &*self.storage;
        writeln!(f, "P = {{{}}}", storage.names.join(", "))?;
        for (i, d) in storage.domains.iter().enumerate() {
            writeln!(f, "M_{} ({}) = {}", i, storage.names[i], d)?;
        }
        for c in &storage.constraints {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example network of the paper's Section 3.
    pub(crate) fn paper_network() -> (ConstraintNetwork<(i64, i64)>, Vec<VarId>) {
        let mut net = ConstraintNetwork::new();
        let q1 = net.add_variable("Q1", vec![(1, 0), (0, 1), (1, 1)]);
        let q2 = net.add_variable("Q2", vec![(1, -1), (1, 1)]);
        let q3 = net.add_variable("Q3", vec![(0, 1), (1, 1), (1, 2)]);
        let q4 = net.add_variable("Q4", vec![(1, 0), (0, 1), (1, 1)]);
        net.add_constraint(q1, q2, vec![((1, 0), (1, 1)), ((0, 1), (1, -1))])
            .unwrap();
        net.add_constraint(
            q1,
            q3,
            vec![((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))],
        )
        .unwrap();
        net.add_constraint(q1, q4, vec![((1, 0), (1, 0)), ((0, 1), (0, 1))])
            .unwrap();
        net.add_constraint(q2, q3, vec![((1, 1), (0, 1)), ((1, -1), (1, 1))])
            .unwrap();
        // The paper's S24 lists [(1 0), (0 1)], but (1 0) is not in M2 (a typo
        // in the published example); (1 -1) keeps the published solution.
        net.add_constraint(q2, q4, vec![((1, -1), (0, 1)), ((1, 1), (1, 0))])
            .unwrap();
        net.add_constraint(q3, q4, vec![((0, 1), (1, 0))]).unwrap();
        (net, vec![q1, q2, q3, q4])
    }

    #[test]
    fn build_and_query_paper_network() {
        let (net, vars) = paper_network();
        assert_eq!(net.variable_count(), 4);
        assert_eq!(net.constraint_count(), 6);
        assert_eq!(net.total_domain_size(), 3 + 2 + 3 + 3);
        assert_eq!(net.search_space_size(), 54.0);
        assert_eq!(net.name(vars[0]), "Q1");
        assert_eq!(net.domain(vars[1]).len(), 2);
        assert_eq!(net.neighbours(vars[0]).len(), 3);
        assert!(net.constraint_between(vars[0], vars[3]).is_some());
        assert!(net.constraint_between(vars[0], vars[0]).is_none());
    }

    #[test]
    fn display_lists_domains_and_constraints() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("Q1", vec![1, 2]);
        let b = net.add_variable("Q2", vec![3]);
        net.add_constraint(a, b, vec![(1, 3)]).unwrap();
        let s = net.to_string();
        assert!(s.contains("P = {Q1, Q2}"));
        assert!(s.contains("M_0 (Q1) = {1, 2}"));
        assert!(s.contains("S(x0, x1)"));
    }

    #[test]
    fn constraint_errors() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![1, 2]);
        let b = net.add_variable("b", vec![3]);
        assert_eq!(
            net.add_constraint(a, a, vec![(1, 1)]),
            Err(CspError::SelfConstraint(a))
        );
        assert!(matches!(
            net.add_constraint(a, VarId::new(9), vec![(1, 3)]),
            Err(CspError::UnknownVariable(_))
        ));
        assert!(matches!(
            net.add_constraint(a, b, vec![(7, 3)]),
            Err(CspError::ValueNotInDomain { .. })
        ));
        let mut bad = HashSet::new();
        bad.insert((0usize, 5usize));
        assert!(matches!(
            net.add_constraint_by_index(a, b, bad),
            Err(CspError::ValueIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn constraints_merge_on_same_scope() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![1, 2]);
        let b = net.add_variable("b", vec![3, 4]);
        net.add_constraint(a, b, vec![(1, 3)]).unwrap();
        net.add_constraint(a, b, vec![(2, 4)]).unwrap();
        assert_eq!(net.constraint_count(), 1);
        assert_eq!(net.constraint_between(a, b).unwrap().pair_count(), 2);
        // Adding with the scope reversed also merges (orientation fixed up).
        net.add_constraint(b, a, vec![(3, 2)]).unwrap();
        assert_eq!(net.constraint_count(), 1);
        let c = net.constraint_between(a, b).unwrap();
        assert_eq!(c.pair_count(), 3);
        assert!(c.allows(a, 1, b, 0));
    }

    #[test]
    fn conflict_detection_matches_paper_solution() {
        let (net, vars) = paper_network();
        let mut asg = Assignment::new(net.variable_count());
        let mut checks = 0u64;
        // Assign Q1 = (1 0).
        asg.assign(vars[0], 0);
        // Q2 = (1 1) (index 1) is consistent with Q1=(1 0).
        assert!(net.conflicts_with(&asg, vars[1], 1, &mut checks).is_empty());
        // Q2 = (1 -1) (index 0) conflicts with Q1=(1 0).
        assert_eq!(
            net.conflicts_with(&asg, vars[1], 0, &mut checks),
            vec![vars[0]]
        );
        assert!(checks > 0);
    }

    #[test]
    fn restriction_partitions_the_search_space() {
        let (net, vars) = paper_network();
        // Restricting Q1 to its first value keeps the published solution.
        let shard = net.restricted(vars[0], &[0]).unwrap();
        assert_eq!(shard.live_count(vars[0]), 1);
        assert_eq!(shard.live_values(vars[0]), vec![0]);
        assert!(shard.is_live(vars[0], 0));
        assert!(!shard.is_live(vars[0], 1));
        assert_eq!(shard.constraint_count(), net.constraint_count());
        // The full domain is still addressable — masks never remap — and
        // the pair tables are untouched.
        assert_eq!(shard.domain(vars[0]).len(), 3);
        assert_eq!(shard.domain(vars[0]).value(0), &(1, 0));
        let c = shard.constraint_between(vars[0], vars[1]).unwrap();
        assert_eq!(c.pair_count(), 2);
        assert!(c.allows(vars[0], 0, vars[1], 1));
        // Search-space measures follow the live counts.
        assert_eq!(shard.total_domain_size(), 1 + 2 + 3 + 3);
        assert_eq!(shard.search_space_size(), 18.0);
        // Restricting a view intersects masks (original indices).
        let narrower = shard.restricted(vars[1], &[1]).unwrap();
        assert_eq!(narrower.live_values(vars[0]), vec![0]);
        assert_eq!(narrower.live_values(vars[1]), vec![1]);
        // Out-of-range and duplicate restrictions are rejected.
        assert!(matches!(
            net.restricted(vars[0], &[9]),
            Err(CspError::ValueIndexOutOfRange { .. })
        ));
        assert!(matches!(
            net.restricted(vars[0], &[0, 0]),
            Err(CspError::ValueIndexOutOfRange { .. })
        ));
        assert!(matches!(
            net.restricted(VarId::new(99), &[0]),
            Err(CspError::UnknownVariable(_))
        ));
    }

    #[test]
    fn masked_solutions_respect_the_mask() {
        let (net, vars) = paper_network();
        // The published solution assigns Q1 = index 0; masking index 0 off
        // makes that assignment a non-solution of the view.
        let shard = net.restricted(vars[0], &[1, 2]).unwrap();
        let mut asg = Assignment::new(4);
        asg.assign(vars[0], 0);
        asg.assign(vars[1], 1);
        asg.assign(vars[2], 0);
        asg.assign(vars[3], 0);
        assert_eq!(net.is_solution(&asg), Ok(true));
        assert_eq!(shard.is_solution(&asg), Ok(false));
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let (net, vars) = paper_network();
        let clone = net.clone();
        assert!(net.shares_storage(&clone));
        // Mutating the clone detaches it without disturbing the original.
        let mut fork = clone.clone();
        fork.add_variable("Q5", vec![(9, 9)]);
        assert!(!fork.shares_storage(&net));
        assert!(net.shares_storage(&clone));
        assert_eq!(net.variable_count(), 4);
        assert_eq!(fork.variable_count(), 5);
        // The untouched tables of the fork are still the parent's tables.
        for v in &vars {
            assert!(Arc::ptr_eq(net.domain_handle(*v), fork.domain_handle(*v)));
        }
        for ci in 0..net.constraint_count() {
            assert!(Arc::ptr_eq(
                net.constraint_handle(ci),
                fork.constraint_handle(ci)
            ));
        }
    }

    #[test]
    fn restricted_views_share_all_tables_and_the_kernel() {
        let (net, vars) = paper_network();
        let parent_kernel = Arc::clone(net.kernel());
        let shard = net.restricted(vars[0], &[0, 1]).unwrap();
        // A mask-based view shares the whole storage: every domain table,
        // every constraint table, and the compiled kernel.
        assert!(shard.shares_storage(&net));
        for &v in &vars {
            assert!(Arc::ptr_eq(net.domain_handle(v), shard.domain_handle(v)));
        }
        for ci in 0..net.constraint_count() {
            assert!(Arc::ptr_eq(
                net.constraint_handle(ci),
                shard.constraint_handle(ci)
            ));
        }
        assert!(Arc::ptr_eq(&parent_kernel, shard.kernel()));
        assert!(shard.mask().is_some());
        // An identity restriction is a plain clone: no mask at all.
        let full: Vec<usize> = (0..net.domain(vars[0]).len()).collect();
        let identity = net.restricted(vars[0], &full).unwrap();
        assert!(identity.shares_storage(&net));
        assert!(identity.mask().is_none());
    }

    #[test]
    fn mutation_invalidates_the_cached_kernel() {
        let (net, vars) = paper_network();
        let kernel = Arc::clone(net.kernel());
        // A clone keeps the compiled kernel (same storage).
        let clone = net.clone();
        assert!(Arc::ptr_eq(&kernel, clone.kernel()));
        // Mutating a fork recompiles: the fork's kernel reflects the new
        // tables, the parent keeps the original.
        let mut fork = net.clone();
        fork.add_variable("Q5", vec![(9, 9)]);
        assert!(!Arc::ptr_eq(&kernel, fork.kernel()));
        assert_eq!(fork.kernel().variable_count(), 5);
        assert!(Arc::ptr_eq(&kernel, net.kernel()));
        // The kernel agrees with the constraint tables.
        let c = net.constraint_between(vars[0], vars[1]).unwrap();
        let ci = net
            .constraints_of(vars[0])
            .iter()
            .copied()
            .find(|&i| net.constraint(i).involves(vars[1]))
            .unwrap();
        for a in 0..net.domain(vars[0]).len() {
            for b in 0..net.domain(vars[1]).len() {
                assert_eq!(
                    c.allows(vars[0], a, vars[1], b),
                    net.kernel().allows(ci, vars[0], a, b),
                    "pair ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn full_solution_check_and_materialization() {
        let (net, vars) = paper_network();
        let mut asg = Assignment::new(4);
        // The paper's stated solution.
        asg.assign(vars[0], 0); // (1 0)
        asg.assign(vars[1], 1); // (1 1)
        asg.assign(vars[2], 0); // (0 1)
        asg.assign(vars[3], 0); // (1 0)
        assert_eq!(net.is_solution(&asg), Ok(true));
        assert_eq!(net.materialize(&asg), vec![(1, 0), (1, 1), (0, 1), (1, 0)]);
        // Perturbing one value breaks it.
        asg.assign(vars[2], 1);
        assert_eq!(net.is_solution(&asg), Ok(false));
        // Incomplete assignments are never solutions.
        let partial = Assignment::new(4);
        assert_eq!(net.is_solution(&partial), Ok(false));
    }
}
