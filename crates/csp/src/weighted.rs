//! Weighted constraint networks (the paper's first future direction).
//!
//! Section 6 of the paper proposes giving *weights* to constraints so that
//! different solutions of the same network can be distinguished.  Here a
//! weight is attached to every allowed pair of every constraint (e.g. the
//! estimated locality benefit of that layout combination, possibly scaled by
//! the importance of the nest that generated it), and [`BranchAndBound`]
//! finds the complete assignment that (a) satisfies every constraint and
//! (b) maximizes the total weight of the selected pairs.
//!
//! # The dense weight spine
//!
//! A [`WeightedNetwork`] is a thin copy-on-write overlay over its hard
//! [`ConstraintNetwork`]: one **dense** [`WeightTable`] per constraint (flat
//! `f64` matrices in both orientations, mirroring the bit-matrices — see
//! [`crate::bitset`]), behind a shared spine.  Cloning shares everything;
//! [`WeightedNetwork::set_weight`] detaches and patches exactly one table;
//! [`WeightedNetwork::restricted`] shares the whole spine (a weighted domain
//! shard copies **zero** dense entries).
//!
//! The execution form is the [`WeightKernel`]: per-constraint dense matrices
//! plus row-maximum aggregates over the allowed pairs, compiled lazily at
//! most once per spine (the same `OnceLock` discipline as the hard
//! [`BitKernel`](crate::BitKernel)) and recompiled **incrementally** — a
//! `set_weight` rebuilds only the touched constraint's aggregates, reusing
//! every other compiled matrix by pointer.  All weighted hot paths (branch
//! and bound, the portfolio's greedy probes, the weighted value ordering)
//! read it directly: no hash probe survives on the optimizing path.

use crate::assignment::{Assignment, Solution};
use crate::bitset::{KernelEdge, WeightKernel, WeightTable};
use crate::network::{ConstraintNetwork, VarId};
use crate::solver::portfolio::{CancelToken, SharedIncumbent};
use crate::solver::weighted_value_order;
use crate::solver::{SearchLimits, SearchStats, SoftAc3};
use crate::Value;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How often (in visited nodes) the wall-clock deadline is polled.
const DEADLINE_POLL_MASK: u64 = 0x7F;

/// Which limit (if any) cut the branch-and-bound search short.
#[derive(Debug, Default, Clone, Copy)]
struct Cutoff {
    node: bool,
    deadline: bool,
    cancelled: bool,
}

/// Cooperation hooks for portfolio branch and bound: a shared incumbent
/// bound published across members, and a cancellation token.
///
/// Pruning against the *shared* bound is strict (`<`), never `<=`: a
/// subtree that could still *tie* the incumbent is always explored.  That
/// discipline is what makes the portfolio's reported solution independent
/// of when foreign bounds arrive — and therefore of the thread count (see
/// [`crate::solver::portfolio`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct Coop<'a> {
    /// Best solution weight found by any cooperating member, if sharing.
    pub incumbent: Option<&'a SharedIncumbent>,
    /// Cooperative cancellation, if racing.
    pub cancel: Option<&'a CancelToken>,
}

/// The shared tables behind a [`WeightedNetwork`]: one optional dense
/// weight table per constraint plus the lazily compiled [`WeightKernel`].
///
/// `None` in a table slot means "every pair of this constraint carries the
/// default weight" — nothing is materialized until a `set_weight` touches
/// the constraint, so wrapping a large hard network allocates no dense
/// entry at all.
#[derive(Debug)]
struct WeightSpine {
    /// Same indexing as the hard network's constraint list.
    tables: Vec<Option<Arc<WeightTable>>>,
    /// Compiled execution form, built lazily at most once per spine and
    /// shared by every handle over it.
    kernel: OnceLock<Arc<WeightKernel>>,
}

impl Clone for WeightSpine {
    fn clone(&self) -> Self {
        // Cloning a spine only happens on the copy-on-write path (a handle
        // about to be mutated): the mutator installs an incrementally
        // patched kernel afterwards, so the fork must not inherit one
        // compiled from tables it is about to change.
        WeightSpine {
            tables: self.tables.clone(),
            kernel: OnceLock::new(),
        }
    }
}

/// A constraint network whose allowed pairs carry weights.
///
/// Like [`ConstraintNetwork`], a weighted network is copy-on-write: cloning
/// shares the hard network's storage and the whole weight spine;
/// [`WeightedNetwork::set_weight`] copies only the one dense table it
/// touches (recompiling only that constraint's kernel aggregates) and
/// [`WeightedNetwork::restricted`] shares **every** table and the compiled
/// [`WeightKernel`] by pointer.
#[derive(Debug, Clone)]
pub struct WeightedNetwork<V> {
    network: ConstraintNetwork<V>,
    spine: Arc<WeightSpine>,
    default_weight: f64,
}

impl<V: Value> WeightedNetwork<V> {
    /// Wraps a network; pairs start with the given default weight.
    pub fn new(network: ConstraintNetwork<V>, default_weight: f64) -> Self {
        let spine = Arc::new(WeightSpine {
            tables: vec![None; network.constraint_count()],
            kernel: OnceLock::new(),
        });
        WeightedNetwork {
            network,
            spine,
            default_weight,
        }
    }

    /// The underlying (hard) constraint network.
    pub fn network(&self) -> &ConstraintNetwork<V> {
        &self.network
    }

    /// The weight every pair no `set_weight` touched carries.
    pub fn default_weight(&self) -> f64 {
        self.default_weight
    }

    /// The compiled weighted execution kernel (dense matrices plus
    /// row-maximum aggregates, see [`crate::bitset::WeightKernel`]),
    /// building it on first use and caching it inside the shared spine.
    ///
    /// Every handle over the same spine — clones, restricted views, domain
    /// shards — returns the *same* `Arc` (verify with `Arc::ptr_eq`).  A
    /// `set_weight` installs an incrementally patched kernel: only the
    /// touched constraint's aggregates are recompiled.
    pub fn weight_kernel(&self) -> &Arc<WeightKernel> {
        self.spine.kernel.get_or_init(|| {
            Arc::new(WeightKernel::build(
                &self.spine.tables,
                self.network.kernel(),
                self.default_weight,
            ))
        })
    }

    /// Whether `self` and `other` share the weight table of constraint
    /// `constraint_index` (a structural-sharing assertion for tests; out of
    /// range on either side counts as not shared).  Two untouched slots of
    /// networks with the same default weight count as shared — both are the
    /// same uniform table, just never materialized.
    pub fn shares_weight_table(&self, other: &Self, constraint_index: usize) -> bool {
        match (
            self.spine.tables.get(constraint_index),
            other.spine.tables.get(constraint_index),
        ) {
            (Some(Some(a)), Some(Some(b))) => Arc::ptr_eq(a, b),
            (Some(None), Some(None)) => {
                self.default_weight.to_bits() == other.default_weight.to_bits()
            }
            _ => false,
        }
    }

    /// Whether `self` and `other` share the entire weight spine (tables and
    /// compiled kernel) by pointer — the post-clone / post-shard state.
    pub fn shares_weight_spine(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.spine, &other.spine)
    }

    /// Total dense weight entries currently materialized across all tables
    /// (an audit metric: a shard split must not change it).
    pub fn dense_entries(&self) -> usize {
        self.spine
            .tables
            .iter()
            .flatten()
            .map(|table| table.dense_entries())
            .sum()
    }

    /// Copy-on-write patch of one constraint's dense table: detaches the
    /// spine (if shared) and the touched table (if shared), applies `patch`,
    /// and — when a compiled kernel existed — installs an incrementally
    /// recompiled kernel in which only constraint `ci` was rebuilt.
    fn patch_table(&mut self, ci: usize, patch: impl FnOnce(&mut WeightTable)) {
        let old_kernel = self.spine.kernel.get().cloned();
        let constraint = &self.network.constraints()[ci];
        let first_size = self.network.domain(constraint.first()).len();
        let second_size = self.network.domain(constraint.second()).len();
        let default_weight = self.default_weight;
        let spine = Arc::make_mut(&mut self.spine);
        let slot = &mut spine.tables[ci];
        let table = match slot {
            Some(table) => Arc::make_mut(table),
            None => {
                *slot = Some(Arc::new(WeightTable::uniform(
                    first_size,
                    second_size,
                    default_weight,
                )));
                Arc::make_mut(slot.as_mut().expect("just inserted"))
            }
        };
        patch(table);
        // Incremental kernel recompilation: only constraint `ci`'s
        // aggregates are rebuilt; every other compiled matrix is reused by
        // pointer.  (The spine's kernel slot is empty here: either the
        // CoW clone reset it, or we take() the in-place one.)
        spine.kernel.take();
        if let Some(old) = old_kernel {
            let patched = old.patched(ci, spine.tables[ci].as_ref(), self.network.kernel());
            let _ = spine.kernel.set(Arc::new(patched));
        }
    }

    /// Resolves `(a, b, value_a, value_b)` to a constraint index and an
    /// oriented index pair.
    fn resolve_pair(
        &self,
        a: VarId,
        b: VarId,
        value_a: &V,
        value_b: &V,
    ) -> crate::Result<(usize, (usize, usize))> {
        let ci = self
            .network
            .constraint_index_between(a, b)
            .ok_or(crate::CspError::UnknownVariable(b))?;
        let ia = self.network.domain(a).index_of(value_a).ok_or_else(|| {
            crate::CspError::ValueNotInDomain {
                variable: a,
                value: format!("{value_a:?}"),
            }
        })?;
        let ib = self.network.domain(b).index_of(value_b).ok_or_else(|| {
            crate::CspError::ValueNotInDomain {
                variable: b,
                value: format!("{value_b:?}"),
            }
        })?;
        let constraint = &self.network.constraints()[ci];
        let pair = if constraint.first() == a {
            (ia, ib)
        } else {
            (ib, ia)
        };
        Ok((ci, pair))
    }

    /// Sets the weight of one allowed pair of the constraint between `a` and
    /// `b`.  The pair is given as values of `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error when no constraint exists between the variables or
    /// the values are not in their domains.
    pub fn set_weight(
        &mut self,
        a: VarId,
        b: VarId,
        value_a: &V,
        value_b: &V,
        weight: f64,
    ) -> crate::Result<()> {
        let (ci, pair) = self.resolve_pair(a, b, value_a, value_b)?;
        self.patch_table(ci, |table| table.set(pair.0, pair.1, weight));
        Ok(())
    }

    /// Adds `delta` to the weight of one pair — the accumulation form
    /// weight derivations use, writing contributions straight into the
    /// dense table with no intermediate map.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WeightedNetwork::set_weight`].
    pub fn add_weight(
        &mut self,
        a: VarId,
        b: VarId,
        value_a: &V,
        value_b: &V,
        delta: f64,
    ) -> crate::Result<()> {
        let (ci, pair) = self.resolve_pair(a, b, value_a, value_b)?;
        self.patch_table(ci, |table| table.add(pair.0, pair.1, delta));
        Ok(())
    }

    /// The weight of a pair of a constraint (by constraint index and pair
    /// oriented like the constraint).
    ///
    /// Any unknown pair — out-of-range constraint index *or* out-of-range
    /// value indices — reads the default weight, matching the old
    /// map-backed behavior (an unchecked dense read would alias another
    /// row's entry instead).
    pub fn weight_of(&self, constraint_index: usize, pair: (usize, usize)) -> f64 {
        match self.spine.tables.get(constraint_index) {
            Some(Some(table)) if pair.0 < table.first_size() && pair.1 < table.second_size() => {
                table.get(pair.0, pair.1)
            }
            _ => self.default_weight,
        }
    }

    /// Builds a mask-based restricted *view* with the domain of `var`
    /// restricted to the given value indices (see
    /// [`ConstraintNetwork::restricted`]).
    ///
    /// Because a mask never remaps indices, the **entire weight spine** —
    /// every dense table and the compiled [`WeightKernel`] — is shared with
    /// `self` by pointer: a weighted domain shard allocates a few mask words
    /// and zero dense weight entries.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConstraintNetwork::restricted`].
    pub fn restricted(&self, var: VarId, keep: &[usize]) -> crate::Result<WeightedNetwork<V>> {
        Ok(WeightedNetwork {
            network: self.network.restricted(var, keep)?,
            spine: Arc::clone(&self.spine),
            default_weight: self.default_weight,
        })
    }

    /// The total weight of a complete assignment (only meaningful when it is
    /// a solution of the hard network).
    ///
    /// Only constraints adjacent to assigned variables are visited (via the
    /// kernel adjacency, each constraint exactly once from its `first`
    /// endpoint), so the cost is `O(edges of the assignment)`, not
    /// `O(constraints)` — and each weight is one dense read.  The summation
    /// order (ascending variable, adjacency order) is fixed, so equal
    /// assignments produce bit-equal sums on every portfolio member.
    pub fn assignment_weight(&self, assignment: &Assignment) -> f64 {
        let kernel = self.network.kernel();
        let weights = self.weight_kernel();
        let mut total = 0.0;
        for var in self.network.variables() {
            let Some(a) = assignment.get(var) else {
                continue;
            };
            for edge in kernel.edges(var) {
                if !edge.var_is_first {
                    continue; // each constraint is summed once, from `first`
                }
                if let Some(b) = assignment.get(edge.other) {
                    if kernel.constraint(edge.constraint).allows(a, b) {
                        total += weights.weight(edge.constraint, a, b);
                    }
                }
            }
        }
        total
    }
}

/// The result of a branch-and-bound optimization.
#[derive(Debug, Clone)]
pub struct OptimizeResult<V> {
    /// The best solution found, if the hard network is satisfiable.
    pub solution: Option<Solution<V>>,
    /// The weight of the best solution.
    pub best_weight: f64,
    /// Search statistics.
    pub stats: SearchStats,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Whether the search was cut off by the node limit before exploring
    /// the whole tree (a `None` solution then proves nothing).
    pub hit_node_limit: bool,
    /// Whether the search was cut off by the wall-clock deadline.
    pub hit_deadline: bool,
    /// Whether the search was aborted by a [`CancelToken`].
    pub cancelled: bool,
}

impl<V: Value> OptimizeResult<V> {
    /// Whether the search explored (or soundly pruned) the entire space:
    /// the reported solution is then the true optimum.
    pub fn is_exhaustive(&self) -> bool {
        !self.hit_node_limit && !self.hit_deadline && !self.cancelled
    }
}

/// How branch and bound orders the variables it instantiates.
///
/// Diverse orders are what make a branch-and-bound *portfolio* effective:
/// an order that is pathological for one instance is usually excellent for
/// another, and with a shared incumbent every member benefits from the
/// first good solution any order stumbles on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BnbOrder {
    /// Most-constrained variables first (tightest bound early); the
    /// classic default.
    #[default]
    MostConstrainedFirst,
    /// Variable declaration order.
    Canonical,
    /// A seeded random shuffle (deterministic per seed).
    Shuffled(u64),
}

/// Depth-first branch and bound over a [`WeightedNetwork`].
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    /// Give up after visiting this many nodes (`None` = unlimited).
    pub node_limit: Option<u64>,
    /// Variable instantiation order.
    pub order: BnbOrder,
    /// Run the soft-AC-3 weighted bound-consistency propagator
    /// ([`SoftAc3`]) at every node (default: on).  Results are identical
    /// either way — propagation only cuts subtrees that cannot change the
    /// reported optimum — so this is a perf/verification toggle, not a
    /// semantic one.
    pub propagate: bool,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            node_limit: None,
            order: BnbOrder::default(),
            propagate: true,
        }
    }
}

impl BranchAndBound {
    /// Creates a branch-and-bound optimizer with no node limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the variable instantiation order.
    pub fn order(mut self, order: BnbOrder) -> Self {
        self.order = order;
        self
    }

    /// Toggles soft-AC-3 propagation (see the `propagate` field).
    pub fn propagation(mut self, on: bool) -> Self {
        self.propagate = on;
        self
    }

    /// Finds the maximum-weight solution of the weighted network.
    pub fn optimize<V: Value>(&self, weighted: &WeightedNetwork<V>) -> OptimizeResult<V> {
        let limits = SearchLimits {
            node_limit: self.node_limit,
            deadline: None,
        };
        self.optimize_with(weighted, &limits)
    }

    /// Finds the maximum-weight solution under per-run limits (node budget
    /// and/or wall-clock deadline) — the request-scoped form `mlo-core`
    /// strategies use.
    pub fn optimize_with<V: Value>(
        &self,
        weighted: &WeightedNetwork<V>,
        limits: &SearchLimits,
    ) -> OptimizeResult<V> {
        self.optimize_coop(weighted, limits, &Coop::default())
    }

    /// Finds the maximum-weight solution while cooperating with other
    /// portfolio members: improvements are published to (and pruning reads
    /// from) the shared incumbent, and the cancel token aborts the search
    /// when the race is decided.
    pub fn optimize_coop<V: Value>(
        &self,
        weighted: &WeightedNetwork<V>,
        limits: &SearchLimits,
        coop: &Coop<'_>,
    ) -> OptimizeResult<V> {
        let start = Instant::now();
        let network = weighted.network();
        let mut stats = SearchStats::default();
        let mut best_weight = f64::NEG_INFINITY;
        let mut best_assignment: Option<Assignment> = None;
        let mut assignment = Assignment::new(network.variable_count());
        let mut cutoff = Cutoff::default();

        let mut order: Vec<VarId> = network.variables().collect();
        match self.order {
            // Most-constrained-first keeps the bound tight early.
            BnbOrder::MostConstrainedFirst => {
                order.sort_by_key(|&v| std::cmp::Reverse(network.constraints_of(v).len()));
            }
            BnbOrder::Canonical => {}
            BnbOrder::Shuffled(seed) => {
                order.shuffle(&mut StdRng::seed_from_u64(seed));
            }
        }

        // The execution kernels (shared, compiled at most once per storage /
        // spine) and the live values of every variable — on a mask-based
        // restricted view this is where the restriction takes effect.  Live
        // values are ordered **best weight potential first** (dense
        // row-maximum aggregates): landing near the optimum early is what
        // makes the bound prune.
        let kernel = Arc::clone(network.kernel());
        let weights = Arc::clone(weighted.weight_kernel());
        let domains = kernel.masked_domains(network.mask().map(|m| &**m));
        let live: Vec<Vec<usize>> = network
            .variables()
            .map(|v| weighted_value_order(&kernel, &weights, &domains, v))
            .collect();

        // Optimistic per-constraint bound: the largest weight of any pair
        // whose endpoints are both live (dead pairs of a restricted view
        // must not loosen the bound — a materialized restriction would not
        // contain them at all).  Unmasked constraints read the precomputed
        // kernel aggregate; only constraints touching a masked variable
        // rescan their live pairs.
        let floor = weighted.default_weight.max(0.0);
        let max_pair_weight: Vec<f64> = (0..network.constraint_count())
            .map(|ci| {
                let bit = kernel.constraint(ci);
                let masked = network
                    .mask()
                    .is_some_and(|m| m.is_masked(bit.first()) || m.is_masked(bit.second()));
                let best = if masked {
                    let mut best = f64::NEG_INFINITY;
                    let wc = weights.constraint(ci);
                    domains.for_each_live(bit.first(), |a| {
                        domains.for_each_common(bit.second(), bit.row(true, a), |b| {
                            best = best.max(wc.get(a, b));
                        });
                    });
                    best
                } else {
                    weights.constraint(ci).max_allowed()
                };
                if best.is_finite() {
                    floor.max(best)
                } else {
                    floor
                }
            })
            .collect();

        // Assigned-prefix adjacency: the static order means the assigned
        // set at depth `d` is exactly `order[..d]`, so both the conflict
        // probe and the gained-weight sum walk a precomputed filtered edge
        // list.  Filtering preserves adjacency order — identical check
        // counts and (for `gained`) the same float summation order, hence
        // bit-identical totals — while the per-depth lists keep the dense
        // row reads block-contiguous across the value loop.
        let mut position = vec![0usize; network.variable_count()];
        for (d, &v) in order.iter().enumerate() {
            position[v.index()] = d;
        }
        let earlier: Vec<Vec<KernelEdge>> = order
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                kernel
                    .edges(v)
                    .iter()
                    .filter(|e| position[e.other.index()] < d)
                    .copied()
                    .collect()
            })
            .collect();

        let ctx = BnbContext {
            weighted,
            kernel: &kernel,
            weights: &weights,
            live,
            limits,
            coop,
            order,
            earlier,
            max_pair_weight,
        };
        // Soft-AC-3 root state: a hard fixpoint (no incumbent) deletes
        // values with no completion at all; a root wipeout proves the
        // network has no solution, which is exactly the empty result the
        // unpropagated search would grind to.
        let mut soft = if self.propagate {
            let mut soft = SoftAc3::new(&kernel, &weights, network.mask().map(|m| &**m));
            if soft.root_propagate(&mut stats).is_err() {
                return OptimizeResult {
                    solution: None,
                    best_weight: 0.0,
                    stats,
                    elapsed: start.elapsed(),
                    hit_node_limit: false,
                    hit_deadline: false,
                    cancelled: false,
                };
            }
            soft.commit();
            Some(soft)
        } else {
            None
        };
        self.recurse(
            &ctx,
            0,
            &mut assignment,
            0.0,
            &mut best_weight,
            &mut best_assignment,
            &mut soft,
            &mut stats,
            &mut cutoff,
        );

        let solution = best_assignment.map(|a| Solution::from_assignment(network, &a));
        OptimizeResult {
            solution,
            best_weight: if best_weight.is_finite() {
                best_weight
            } else {
                0.0
            },
            stats,
            elapsed: start.elapsed(),
            hit_node_limit: cutoff.node,
            hit_deadline: cutoff.deadline,
            cancelled: cutoff.cancelled,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse<V: Value>(
        &self,
        ctx: &BnbContext<'_, V>,
        depth: usize,
        assignment: &mut Assignment,
        weight_so_far: f64,
        best_weight: &mut f64,
        best_assignment: &mut Option<Assignment>,
        soft: &mut Option<SoftAc3>,
        stats: &mut SearchStats,
        cutoff: &mut Cutoff,
    ) {
        if cutoff.node || cutoff.deadline || cutoff.cancelled {
            return;
        }
        if let Some(limit) = ctx.limits.node_limit {
            if stats.nodes_visited >= limit {
                cutoff.node = true;
                return;
            }
        }
        if stats.nodes_visited & DEADLINE_POLL_MASK == 0 {
            if let Some(deadline) = ctx.limits.deadline {
                if Instant::now() >= deadline {
                    cutoff.deadline = true;
                    return;
                }
            }
            if let Some(cancel) = ctx.coop.cancel {
                if cancel.is_cancelled() {
                    cutoff.cancelled = true;
                    return;
                }
            }
        }
        let weighted = ctx.weighted;
        if depth == ctx.order.len() {
            if weight_so_far > *best_weight {
                *best_weight = weight_so_far;
                *best_assignment = Some(assignment.clone());
                if let Some(incumbent) = ctx.coop.incumbent {
                    // Publish the *canonically* recomputed weight: every
                    // member sums constraint contributions in the same
                    // (variable, adjacency) order, so equal solutions
                    // publish bit-equal bounds regardless of search order.
                    incumbent.offer(weighted.assignment_weight(assignment));
                }
            }
            return;
        }
        // Upper bound: with propagation on, the parent's `propagate` call
        // already performed a (tighter, live-masked) node bound check —
        // the static optimistic scan below is only the unpropagated path.
        if soft.is_none() {
            // Current weight plus the best conceivable weight of every
            // constraint not yet fully assigned.
            let optimistic: f64 = ctx
                .max_pair_weight
                .iter()
                .enumerate()
                .filter(|&(ci, _)| {
                    let c = ctx.kernel.constraint(ci);
                    assignment.get(c.first()).is_none() || assignment.get(c.second()).is_none()
                })
                .map(|(_, &bound)| bound)
                .sum();
            if weight_so_far + optimistic <= *best_weight {
                stats.prunings += 1;
                return; // prune: cannot beat this member's own incumbent
            }
            if let Some(incumbent) = ctx.coop.incumbent {
                // Strictly below the shared bound: cannot even tie the best
                // solution found anywhere, so nothing reportable lives here.
                // (Strict `<` — ties must be explored — keeps the final
                // solution independent of bound-arrival timing.)
                if weight_so_far + optimistic < incumbent.get() {
                    stats.prunings += 1;
                    return;
                }
            }
        }

        let var = ctx.order[depth];
        let earlier = &ctx.earlier[depth];
        for &value in &ctx.live[var.index()] {
            if let Some(soft) = soft.as_ref() {
                // Deleted by bound consistency (or forward checking): no
                // completion through this value can beat the incumbent.
                if !soft.is_live(var, value) {
                    continue;
                }
            }
            stats.nodes_visited += 1;
            stats.max_depth = stats.max_depth.max(depth + 1);
            // Inline `conflicts_any` over the assigned-prefix edge list:
            // one check per probed edge, early exit on the first conflict.
            // The propagated path needs no probe: forward checking already
            // removed every value incompatible with an assigned neighbour.
            if soft.is_none() {
                let mut conflict = false;
                for edge in earlier {
                    if let Some(other_value) = assignment.get(edge.other) {
                        stats.consistency_checks += 1;
                        let c = ctx.kernel.constraint(edge.constraint);
                        let allowed = if edge.var_is_first {
                            c.allows(value, other_value)
                        } else {
                            c.allows(other_value, value)
                        };
                        if !allowed {
                            conflict = true;
                            break;
                        }
                    }
                }
                if conflict {
                    continue;
                }
            }
            // Weight gained: every constraint between var and an assigned
            // neighbour contributes the weight of the now-selected pair —
            // one dense oriented read per edge (the filtered list keeps the
            // kernel adjacency order, so the floating-point sum is
            // deterministic).
            let mut gained = 0.0;
            for edge in earlier {
                if let Some(other_value) = assignment.get(edge.other) {
                    gained += ctx.weights.constraint(edge.constraint).oriented(
                        edge.var_is_first,
                        value,
                        other_value,
                    );
                }
            }
            assignment.assign(var, value);
            // Propagate-then-branch: record the assignment in the soft
            // state (reclassify + forward-check), then run the bound-
            // consistency fixpoint against both incumbents.  Either step
            // failing proves the subtree cannot improve the result.
            let mut soft_mark = None;
            if let Some(soft_state) = soft.as_mut() {
                let mark = soft_state.mark();
                let shared = ctx
                    .coop
                    .incumbent
                    .map_or(f64::NEG_INFINITY, SharedIncumbent::get);
                let ok = soft_state.assign(var, value).is_ok()
                    && soft_state
                        .propagate(weight_so_far + gained, *best_weight, shared, stats)
                        .is_ok();
                if !ok {
                    stats.prunings += 1;
                    soft_state.undo_to(mark);
                    assignment.unassign(var);
                    continue;
                }
                soft_mark = Some(mark);
            }
            self.recurse(
                ctx,
                depth + 1,
                assignment,
                weight_so_far + gained,
                best_weight,
                best_assignment,
                soft,
                stats,
                cutoff,
            );
            if let Some(mark) = soft_mark {
                soft.as_mut().expect("soft state set above").undo_to(mark);
            }
            assignment.unassign(var);
        }
        stats.backtracks += 1;
    }
}

/// The per-run inputs of one branch-and-bound search, bundled so the
/// recursion carries one reference instead of eight.
struct BnbContext<'a, V> {
    weighted: &'a WeightedNetwork<V>,
    kernel: &'a crate::bitset::BitKernel,
    /// The compiled dense weight matrices + aggregates.
    weights: &'a WeightKernel,
    /// Live values of every variable (mask-aware, best potential first).
    live: Vec<Vec<usize>>,
    limits: &'a SearchLimits,
    coop: &'a Coop<'a>,
    order: Vec<VarId>,
    /// Per-depth assigned-prefix edge lists (`order`-filtered kernel
    /// adjacency, same edge order).
    earlier: Vec<Vec<KernelEdge>>,
    /// Optimistic per-constraint bound over live pairs.
    max_pair_weight: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_weighted() -> (WeightedNetwork<&'static str>, Vec<VarId>) {
        // Two variables, both pairs (r,r) and (c,c) allowed; (c,c) weighs
        // more, so the optimizer must prefer it even though (r,r) is listed
        // first.
        let mut net: ConstraintNetwork<&'static str> = ConstraintNetwork::new();
        let a = net.add_variable("A", vec!["r", "c"]);
        let b = net.add_variable("B", vec!["r", "c"]);
        net.add_constraint(a, b, vec![("r", "r"), ("c", "c")])
            .unwrap();
        let mut w = WeightedNetwork::new(net, 0.0);
        w.set_weight(a, b, &"r", &"r", 1.0).unwrap();
        w.set_weight(a, b, &"c", &"c", 5.0).unwrap();
        (w, vec![a, b])
    }

    #[test]
    fn branch_and_bound_maximizes_weight() {
        let (w, vars) = simple_weighted();
        let result = BranchAndBound::new().optimize(&w);
        let s = result.solution.expect("satisfiable");
        assert_eq!(s.value(vars[0]), &"c");
        assert_eq!(s.value(vars[1]), &"c");
        assert!((result.best_weight - 5.0).abs() < 1e-9);
        assert!(result.stats.nodes_visited > 0);
    }

    #[test]
    fn weights_default_when_unset() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0), (1, 1)]).unwrap();
        let w = WeightedNetwork::new(net, 2.5);
        assert_eq!(w.weight_of(0, (0, 0)), 2.5);
        assert_eq!(w.weight_kernel().weight(0, 0, 0), 2.5);
        let result = BranchAndBound::new().optimize(&w);
        assert!((result.best_weight - 2.5).abs() < 1e-9);
    }

    #[test]
    fn unsatisfiable_weighted_network_has_no_solution() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0]);
        let b = net.add_variable("b", vec![0]);
        net.add_constraint(a, b, vec![]).unwrap();
        let w = WeightedNetwork::new(net, 1.0);
        let result = BranchAndBound::new().optimize(&w);
        assert!(result.solution.is_none());
        assert_eq!(result.best_weight, 0.0);
    }

    #[test]
    fn assignment_weight_reflects_selected_pairs() {
        let (w, vars) = simple_weighted();
        let mut asg = Assignment::new(2);
        asg.assign(vars[0], 0);
        asg.assign(vars[1], 0);
        assert!((w.assignment_weight(&asg) - 1.0).abs() < 1e-9);
        asg.assign(vars[0], 1);
        asg.assign(vars[1], 1);
        assert!((w.assignment_weight(&asg) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn assignment_weight_ignores_unassigned_and_disallowed_pairs() {
        // A partial assignment only sums constraints whose *both* endpoints
        // are assigned; a disallowed pair contributes nothing.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0)]).unwrap();
        net.add_constraint(b, c, vec![(0, 0), (1, 1)]).unwrap();
        let mut w = WeightedNetwork::new(net, 0.0);
        w.set_weight(a, b, &0, &0, 3.0).unwrap();
        w.set_weight(b, c, &0, &0, 4.0).unwrap();
        let mut asg = Assignment::new(3);
        asg.assign(a, 0);
        asg.assign(b, 0);
        // c unassigned: only the (a, b) constraint counts.
        assert_eq!(w.assignment_weight(&asg), 3.0);
        asg.assign(c, 0);
        assert_eq!(w.assignment_weight(&asg), 7.0);
        // A disallowed (a, b) pair contributes nothing even when assigned.
        asg.assign(a, 1);
        assert_eq!(w.assignment_weight(&asg), 4.0);
    }

    #[test]
    fn assignment_weight_matches_branch_and_bound_cost() {
        // Regression (ISSUE 5 satellite): the adjacency-based
        // assignment_weight must reproduce the BnB-reported cost exactly on
        // a planted instance.
        let spec = crate::random::RandomNetworkSpec {
            variables: 12,
            domain_size: 4,
            density: 0.5,
            tightness: 0.3,
            seed: 2025,
        };
        let (weighted, _) = crate::random::planted_weighted_network(&spec, 50.0, 10);
        let result = BranchAndBound::new().optimize(&weighted);
        let solution = result.solution.expect("planted instances are satisfiable");
        let mut asg = Assignment::new(weighted.network().variable_count());
        for var in weighted.network().variables() {
            asg.assign(var, solution.value_index(var));
        }
        assert_eq!(weighted.assignment_weight(&asg), result.best_weight);
    }

    #[test]
    fn set_weight_errors() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0]);
        let b = net.add_variable("b", vec![0]);
        let c = net.add_variable("c", vec![0]);
        net.add_constraint(a, b, vec![(0, 0)]).unwrap();
        let mut w = WeightedNetwork::new(net, 0.0);
        assert!(w.set_weight(a, c, &0, &0, 1.0).is_err());
        assert!(w.set_weight(a, b, &7, &0, 1.0).is_err());
        assert!(w.set_weight(a, b, &0, &0, 1.0).is_ok());
    }

    #[test]
    fn weight_of_out_of_range_reads_the_default() {
        // The map-backed implementation returned the default for any
        // unknown pair; the dense tables must too (not alias another row).
        let (w, _) = simple_weighted(); // domains of size 2, default 0.0
        assert_eq!(w.weight_of(0, (0, 0)), 1.0, "in-range still works");
        assert_eq!(w.weight_of(0, (0, 2)), 0.0, "second index out of range");
        assert_eq!(w.weight_of(0, (5, 0)), 0.0, "first index out of range");
        assert_eq!(w.weight_of(9, (0, 0)), 0.0, "constraint out of range");
    }

    #[test]
    fn add_weight_accumulates() {
        let (mut w, vars) = simple_weighted();
        w.add_weight(vars[0], vars[1], &"r", &"r", 2.5).unwrap();
        assert_eq!(w.weight_of(0, (0, 0)), 3.5);
        w.add_weight(vars[1], vars[0], &"r", &"r", 0.5).unwrap();
        assert_eq!(w.weight_of(0, (0, 0)), 4.0);
        assert_eq!(w.weight_kernel().weight(0, 0, 0), 4.0);
    }

    #[test]
    fn restricted_views_share_every_weight_table() {
        // a -(c0)- b -(c1)- c: restricting `a` shares both tables (a mask
        // never remaps, so nothing needs rebuilding).
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1, 2]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0), (1, 1), (2, 0)])
            .unwrap();
        net.add_constraint(b, c, vec![(0, 1), (1, 0)]).unwrap();
        let mut w = WeightedNetwork::new(net, 0.0);
        w.set_weight(a, b, &1, &1, 3.0).unwrap();
        w.set_weight(a, b, &2, &0, 7.0).unwrap();
        w.set_weight(b, c, &0, &1, 5.0).unwrap();

        let shard = w.restricted(a, &[2, 1]).unwrap();
        assert!(shard.shares_weight_table(&w, 0));
        assert!(shard.shares_weight_table(&w, 1));
        assert!(shard.shares_weight_spine(&w));
        assert!(shard.network().shares_storage(w.network()));
        // The compiled weight kernel is shared too — and a shard split
        // copies zero dense entries.
        let kernel = Arc::clone(w.weight_kernel());
        let entries = w.dense_entries();
        let another = w.restricted(a, &[0]).unwrap();
        assert!(Arc::ptr_eq(&kernel, another.weight_kernel()));
        assert_eq!(another.dense_entries(), entries);
        // Weights keep their original indices; only the live set changed.
        assert_eq!(shard.weight_of(0, (2, 0)), 7.0);
        assert_eq!(shard.weight_of(0, (1, 1)), 3.0);
        assert_eq!(shard.weight_of(1, (0, 1)), 5.0);
        assert_eq!(shard.network().live_values(a), vec![1, 2]);

        // The identity restriction shares everything and stays mask-free.
        let identity = w.restricted(a, &[0, 1, 2]).unwrap();
        assert!(identity.network().shares_storage(w.network()));
        assert!(identity.network().mask().is_none());
        assert!(identity.shares_weight_table(&w, 0));
        assert!(identity.shares_weight_table(&w, 1));
    }

    #[test]
    fn clones_share_weight_tables_until_mutated() {
        let (w, vars) = simple_weighted();
        let mut clone = w.clone();
        assert!(clone.network().shares_storage(w.network()));
        assert!(clone.shares_weight_table(&w, 0));
        assert!(clone.shares_weight_spine(&w));
        // set_weight detaches only the touched table.
        clone.set_weight(vars[0], vars[1], &"r", &"r", 9.0).unwrap();
        assert!(!clone.shares_weight_table(&w, 0));
        assert_eq!(w.weight_of(0, (0, 0)), 1.0, "original untouched");
        assert_eq!(clone.weight_of(0, (0, 0)), 9.0);
    }

    #[test]
    fn set_weight_patches_the_kernel_incrementally() {
        // Two constraints; a set_weight on the first must recompile only
        // its aggregates — the second constraint's compiled matrix is
        // reused by pointer, and the patched kernel is already installed
        // (no lazy rebuild).
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        let c = net.add_variable("c", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0), (1, 1)]).unwrap();
        net.add_constraint(b, c, vec![(0, 1), (1, 0)]).unwrap();
        let mut w = WeightedNetwork::new(net, 0.0);
        let before = Arc::clone(w.weight_kernel());
        let untouched = Arc::clone(before.constraint_handle(1));
        w.set_weight(a, b, &0, &0, 4.0).unwrap();
        let after = Arc::clone(w.weight_kernel());
        assert!(!Arc::ptr_eq(&before, &after), "kernel was repatched");
        assert!(
            Arc::ptr_eq(&untouched, after.constraint_handle(1)),
            "untouched constraint's compiled matrix is reused"
        );
        assert!(
            !Arc::ptr_eq(before.constraint_handle(0), after.constraint_handle(0)),
            "touched constraint was recompiled"
        );
        assert_eq!(after.weight(0, 0, 0), 4.0);
        assert_eq!(after.constraint(0).max_allowed(), 4.0);
        // Aggregates follow further patches.
        w.set_weight(a, b, &1, &1, 9.0).unwrap();
        assert_eq!(w.weight_kernel().constraint(0).max_allowed(), 9.0);
        assert_eq!(w.weight_kernel().constraint(0).row_max(true, 0), 4.0);
        assert_eq!(w.weight_kernel().constraint(0).row_max(false, 1), 9.0);
    }

    #[test]
    fn restricted_view_optimum_matches_materialized_restriction() {
        // Solving a restricted view must equal solving a from-scratch
        // network holding only the kept values.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![10, 20, 30]);
        let b = net.add_variable("b", vec![1, 2]);
        net.add_constraint(a, b, vec![(10, 1), (20, 2), (30, 1), (30, 2)])
            .unwrap();
        let mut w = WeightedNetwork::new(net, 0.0);
        w.set_weight(a, b, &10, &1, 1.0).unwrap();
        w.set_weight(a, b, &20, &2, 8.0).unwrap();
        w.set_weight(a, b, &30, &2, 4.0).unwrap();
        let view = w.restricted(a, &[0, 2]).unwrap();

        let mut materialized_net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let ma = materialized_net.add_variable("a", vec![10, 30]);
        let mb = materialized_net.add_variable("b", vec![1, 2]);
        materialized_net
            .add_constraint(ma, mb, vec![(10, 1), (30, 1), (30, 2)])
            .unwrap();
        let mut materialized = WeightedNetwork::new(materialized_net, 0.0);
        materialized.set_weight(ma, mb, &10, &1, 1.0).unwrap();
        materialized.set_weight(ma, mb, &30, &2, 4.0).unwrap();

        let from_view = BranchAndBound::new().optimize(&view);
        let from_scratch = BranchAndBound::new().optimize(&materialized);
        assert_eq!(from_view.best_weight, from_scratch.best_weight);
        assert_eq!(
            from_view.solution.unwrap().values(),
            from_scratch.solution.unwrap().values()
        );
    }

    #[test]
    fn node_limit_is_respected() {
        let (w, _) = simple_weighted();
        let bb = BranchAndBound {
            node_limit: Some(1),
            ..BranchAndBound::default()
        };
        let result = bb.optimize(&w);
        assert!(result.stats.nodes_visited <= 2);
    }
}
