//! Variable domains: the ordered set of values a variable may assume.

use crate::Value;
use std::fmt;

/// The domain of one constraint-network variable.
///
/// Values are stored in insertion order and addressed by dense indices; the
/// solvers work on indices and only materialize values when reporting a
/// solution.
///
/// # Examples
///
/// ```
/// use mlo_csp::Domain;
/// let d = Domain::new(vec!["row-major", "column-major", "diagonal"]);
/// assert_eq!(d.len(), 3);
/// assert_eq!(d.index_of(&"diagonal"), Some(2));
/// assert_eq!(d.value(1), &"column-major");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain<V> {
    values: Vec<V>,
}

impl<V: Value> Domain<V> {
    /// Creates a domain from a list of values; duplicates are removed while
    /// preserving first-occurrence order.
    ///
    /// Deduplication is hash-based (`O(n)` expected), so building a domain
    /// from a large candidate list no longer pays the quadratic
    /// `Vec::contains`-per-insert cost.
    pub fn new(values: Vec<V>) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(values.len());
        let mut unique = Vec::with_capacity(values.len());
        for v in values {
            if seen.insert(v.clone()) {
                unique.push(v);
            }
        }
        Domain { values: unique }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty (a trivially unsatisfiable variable).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values in order.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// The value at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn value(&self, index: usize) -> &V {
        &self.values[index]
    }

    /// The value at `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<&V> {
        self.values.get(index)
    }

    /// The index of a value, if present.
    pub fn index_of(&self, value: &V) -> Option<usize> {
        self.values.iter().position(|v| v == value)
    }

    /// Whether the domain contains a value.
    pub fn contains(&self, value: &V) -> bool {
        self.index_of(value).is_some()
    }

    /// Iterates over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> {
        self.values.iter().enumerate()
    }

    /// Adds a value if not already present and returns its index.
    pub fn insert(&mut self, value: V) -> usize {
        if let Some(i) = self.index_of(&value) {
            i
        } else {
            self.values.push(value);
            self.values.len() - 1
        }
    }
}

impl<V: Value> Default for Domain<V> {
    fn default() -> Self {
        Domain { values: Vec::new() }
    }
}

impl<V: Value> FromIterator<V> for Domain<V> {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Domain::new(iter.into_iter().collect())
    }
}

impl<V: Value + fmt::Display> fmt::Display for Domain<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_dedupes_preserving_order() {
        let d = Domain::new(vec![3, 1, 3, 2, 1]);
        assert_eq!(d.values(), &[3, 1, 2]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn large_domains_dedupe_in_linear_time() {
        // Regression test for the O(n²) `Vec::contains`-per-insert dedup: a
        // 10k-value domain (every value duplicated once) must build
        // essentially instantly.  The old quadratic path took ~100M
        // comparisons here; the hash-based one takes 20k inserts.
        let n = 10_000usize;
        let values: Vec<usize> = (0..n).chain(0..n).collect();
        let start = std::time::Instant::now();
        let d = Domain::new(values);
        assert_eq!(d.len(), n);
        assert_eq!(d.value(0), &0);
        assert_eq!(d.value(n - 1), &(n - 1));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "dedup took {:?} — quadratic regression?",
            start.elapsed()
        );
    }

    #[test]
    fn lookup() {
        let d = Domain::new(vec!["a", "b"]);
        assert_eq!(d.index_of(&"b"), Some(1));
        assert_eq!(d.index_of(&"c"), None);
        assert!(d.contains(&"a"));
        assert_eq!(d.value(0), &"a");
        assert_eq!(d.get(5), None);
        let pairs: Vec<(usize, &&str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, &"a"), (1, &"b")]);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut d = Domain::new(vec![1, 2]);
        assert_eq!(d.insert(2), 1);
        assert_eq!(d.insert(7), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn display_and_collect() {
        let d: Domain<i32> = (1..4).collect();
        assert_eq!(d.to_string(), "{1, 2, 3}");
        assert!(Domain::<i32>::default().is_empty());
    }
}
