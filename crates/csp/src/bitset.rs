//! The word-packed execution kernel behind every solver hot path.
//!
//! A [`crate::ConstraintNetwork`] is the *builder-facing* form of a network:
//! domains hold real values, constraints are `HashSet`s of allowed index
//! pairs.  That shape is convenient to construct and query one pair at a
//! time, but the solvers ask "does `S_ij` allow `(a, b)`?" millions of times
//! per solve, and a hash probe per query is where nearly all of the solve
//! time goes.
//!
//! The [`BitKernel`] is the *execution* form the network compiles itself
//! into, lazily and at most once per storage (the handle is cached inside
//! the shared [`crate::NetworkStorage`], so clones, restricted views and
//! session-cached networks all reuse the identical kernel —
//! `Arc::ptr_eq`-verifiable):
//!
//! * every constraint becomes a pair of **bit-matrices** ([`BitConstraint`]):
//!   for each value of one endpoint, a row of `u64` words whose set bits are
//!   the supported values of the other endpoint — both orientations are
//!   precomputed, so `allows` is a shift-and-mask and "revise `x` against
//!   `y`" is a word-AND plus popcount,
//! * per-value **support counts** over the full domains are precomputed,
//!   giving the value-ordering heuristics an O(1) fast path while domains
//!   are unpruned,
//! * live domains become word-packed masks ([`BitDomains`]): forward
//!   checking is `live &= row`, wipeout detection is a zero test, and
//!   saving/restoring a domain is a copy of a handful of words.
//!
//! [`DomainMask`] is the persistent overlay behind mask-based restricted
//! views ([`crate::ConstraintNetwork::restricted`]): a tiny sorted list of
//! `(variable, bit-mask)` entries that the solvers intersect into their
//! initial live domains.  A domain shard therefore allocates a few words —
//! never a pair table.

use crate::assignment::Assignment;
use crate::constraint::BinaryConstraint;
use crate::network::VarId;
use std::sync::Arc;

/// Bits per mask word.
const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `bits` bits.
fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// A full mask for `bits` bits, one valid word at a time.
fn full_word(bits_left: usize) -> u64 {
    if bits_left >= WORD_BITS {
        u64::MAX
    } else {
        (1u64 << bits_left) - 1
    }
}

/// Iterates the set bits of a word slice in ascending order.
fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            f(wi * WORD_BITS + bit);
            w &= w - 1;
        }
    }
}

/// Collects the set bits of a word slice in ascending order.
fn set_bits(words: &[u64]) -> Vec<usize> {
    let mut out = Vec::with_capacity(words.iter().map(|w| w.count_ones() as usize).sum());
    for_each_set_bit(words, |i| out.push(i));
    out
}

/// The per-variable word layout shared by a kernel and every
/// [`BitDomains`] working set derived from it.
#[derive(Debug)]
pub struct DomainShape {
    /// Domain size of each variable.
    sizes: Vec<usize>,
    /// Start word of each variable's mask in the flat word vector.
    offsets: Vec<usize>,
    /// Total number of words across all variables.
    total_words: usize,
}

impl DomainShape {
    fn new(sizes: Vec<usize>) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut total = 0usize;
        for &size in &sizes {
            offsets.push(total);
            total += words_for(size);
        }
        DomainShape {
            sizes,
            offsets,
            total_words: total,
        }
    }

    fn word_range(&self, var: usize) -> std::ops::Range<usize> {
        let start = self.offsets[var];
        start..start + words_for(self.sizes[var])
    }
}

/// One constraint compiled to bit-matrices, both orientations precomputed.
#[derive(Debug)]
pub struct BitConstraint {
    first: VarId,
    second: VarId,
    second_size: usize,
    /// Words per `fwd` row (`ceil(second_size / 64)`).
    fwd_stride: usize,
    /// Words per `rev` row (`ceil(first_size / 64)`).
    rev_stride: usize,
    /// Row `a`: the values of `second` allowed with `first = a`.
    fwd: Vec<u64>,
    /// Row `b`: the values of `first` allowed with `second = b`.
    rev: Vec<u64>,
    /// Per-value support counts over the *full* domains: `support_fwd[a]`
    /// is the number of `second` values allowed with `first = a`.
    support_fwd: Vec<u32>,
    /// `support_rev[b]` is the number of `first` values allowed with
    /// `second = b`.
    support_rev: Vec<u32>,
}

impl BitConstraint {
    fn build(constraint: &BinaryConstraint, first_size: usize, second_size: usize) -> Self {
        let fwd_stride = words_for(second_size).max(1);
        let rev_stride = words_for(first_size).max(1);
        let mut fwd = vec![0u64; first_size * fwd_stride];
        let mut rev = vec![0u64; second_size * rev_stride];
        let mut support_fwd = vec![0u32; first_size];
        let mut support_rev = vec![0u32; second_size];
        for &(a, b) in constraint.allowed_pairs() {
            fwd[a * fwd_stride + b / WORD_BITS] |= 1 << (b % WORD_BITS);
            rev[b * rev_stride + a / WORD_BITS] |= 1 << (a % WORD_BITS);
            support_fwd[a] += 1;
            support_rev[b] += 1;
        }
        BitConstraint {
            first: constraint.first(),
            second: constraint.second(),
            second_size,
            fwd_stride,
            rev_stride,
            fwd,
            rev,
            support_fwd,
            support_rev,
        }
    }

    /// The first endpoint.
    pub fn first(&self) -> VarId {
        self.first
    }

    /// The second endpoint.
    pub fn second(&self) -> VarId {
        self.second
    }

    /// The support row of `value` of the endpoint selected by
    /// `var_is_first`: the set bits are the values of the *other* endpoint
    /// compatible with it.
    pub fn row(&self, var_is_first: bool, value: usize) -> &[u64] {
        if var_is_first {
            &self.fwd[value * self.fwd_stride..(value + 1) * self.fwd_stride]
        } else {
            &self.rev[value * self.rev_stride..(value + 1) * self.rev_stride]
        }
    }

    /// Whether the pair `(a, b)` (oriented `first → second`) is allowed.
    pub fn allows(&self, a: usize, b: usize) -> bool {
        debug_assert!(b < self.second_size);
        self.fwd[a * self.fwd_stride + b / WORD_BITS] >> (b % WORD_BITS) & 1 == 1
    }

    /// The number of values of the *other* endpoint supporting `value` of
    /// the endpoint selected by `var_is_first`, over the full domain.
    pub fn full_support(&self, var_is_first: bool, value: usize) -> u32 {
        if var_is_first {
            self.support_fwd[value]
        } else {
            self.support_rev[value]
        }
    }
}

/// One entry of a variable's kernel adjacency list: the constraint, the
/// neighbour it leads to, and the orientation of this variable in it.
#[derive(Debug, Clone, Copy)]
pub struct KernelEdge {
    /// Index of the constraint (same indexing as the network's constraint
    /// list).
    pub constraint: usize,
    /// The other endpoint.
    pub other: VarId,
    /// Whether the variable owning this adjacency list is the constraint's
    /// `first` endpoint.
    pub var_is_first: bool,
}

/// The compiled execution form of a constraint network: bit-matrix
/// constraints, per-value support counts and the word layout of the live
/// domains.
///
/// Built once per [`crate::NetworkStorage`] (see
/// [`crate::ConstraintNetwork::kernel`]) and shared by every clone and
/// restricted view of the network.
#[derive(Debug)]
pub struct BitKernel {
    shape: Arc<DomainShape>,
    constraints: Vec<BitConstraint>,
    adjacency: Vec<Vec<KernelEdge>>,
}

impl BitKernel {
    /// Compiles a kernel from the storage-level tables.
    pub(crate) fn build(
        domain_sizes: Vec<usize>,
        constraints: &[Arc<BinaryConstraint>],
        adjacency: &[Vec<usize>],
    ) -> Self {
        let compiled: Vec<BitConstraint> = constraints
            .iter()
            .map(|c| {
                BitConstraint::build(
                    c,
                    domain_sizes[c.first().index()],
                    domain_sizes[c.second().index()],
                )
            })
            .collect();
        // The kernel adjacency mirrors the network's per-variable constraint
        // lists (same order), with the orientation resolved once.
        let edges: Vec<Vec<KernelEdge>> = adjacency
            .iter()
            .enumerate()
            .map(|(v, list)| {
                list.iter()
                    .map(|&ci| {
                        let c = &compiled[ci];
                        let var_is_first = c.first().index() == v;
                        KernelEdge {
                            constraint: ci,
                            other: if var_is_first { c.second() } else { c.first() },
                            var_is_first,
                        }
                    })
                    .collect()
            })
            .collect();
        BitKernel {
            shape: Arc::new(DomainShape::new(domain_sizes)),
            constraints: compiled,
            adjacency: edges,
        }
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.shape.sizes.len()
    }

    /// Full domain size of a variable.
    pub fn domain_size(&self, var: VarId) -> usize {
        self.shape.sizes[var.index()]
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The compiled constraint at `index` (same indexing as
    /// [`crate::ConstraintNetwork::constraints`]).
    pub fn constraint(&self, index: usize) -> &BitConstraint {
        &self.constraints[index]
    }

    /// The kernel adjacency of `var`: one edge per constraint involving it,
    /// in the network's adjacency order.
    pub fn edges(&self, var: VarId) -> &[KernelEdge] {
        &self.adjacency[var.index()]
    }

    /// Whether constraint `ci` allows `var = value` together with
    /// `other = other_value` (`var` may be either endpoint).
    pub fn allows(&self, ci: usize, var: VarId, value: usize, other_value: usize) -> bool {
        let c = &self.constraints[ci];
        if var == c.first {
            c.allows(value, other_value)
        } else {
            c.allows(other_value, value)
        }
    }

    /// Whether assigning `value` to `var` violates some constraint against
    /// an already-assigned variable (early exit on the first conflict; one
    /// consistency check is counted per probed neighbour).
    pub fn conflicts_any(
        &self,
        assignment: &Assignment,
        var: VarId,
        value: usize,
        checks: &mut u64,
    ) -> bool {
        for edge in self.edges(var) {
            if let Some(other_value) = assignment.get(edge.other) {
                *checks += 1;
                let c = &self.constraints[edge.constraint];
                let allowed = if edge.var_is_first {
                    c.allows(value, other_value)
                } else {
                    c.allows(other_value, value)
                };
                if !allowed {
                    return true;
                }
            }
        }
        false
    }

    /// The consistent-partial-instantiation test in conflict-set form:
    /// appends every already-assigned variable whose constraint rejects
    /// `var = value` to `conflicts` (no early exit — backjumping needs the
    /// full set); counts one consistency check per probed neighbour.
    pub fn collect_conflicts(
        &self,
        assignment: &Assignment,
        var: VarId,
        value: usize,
        checks: &mut u64,
        conflicts: &mut Vec<VarId>,
    ) {
        for edge in self.edges(var) {
            if let Some(other_value) = assignment.get(edge.other) {
                *checks += 1;
                let c = &self.constraints[edge.constraint];
                let allowed = if edge.var_is_first {
                    c.allows(value, other_value)
                } else {
                    c.allows(other_value, value)
                };
                if !allowed {
                    conflicts.push(edge.other);
                }
            }
        }
    }

    /// A fresh live-domain working set with every value of every variable
    /// present.
    pub fn full_domains(&self) -> BitDomains {
        let mut words = vec![0u64; self.shape.total_words];
        for (v, &size) in self.shape.sizes.iter().enumerate() {
            let range = self.shape.word_range(v);
            let mut left = size;
            for w in &mut words[range] {
                *w = full_word(left);
                left = left.saturating_sub(WORD_BITS);
            }
        }
        BitDomains {
            shape: Arc::clone(&self.shape),
            words,
        }
    }

    /// [`BitKernel::full_domains`] with an optional [`DomainMask`] overlay
    /// already intersected in — the starting point of every solver run on a
    /// (possibly restricted) network.
    pub fn masked_domains(&self, mask: Option<&DomainMask>) -> BitDomains {
        let mut domains = self.full_domains();
        if let Some(mask) = mask {
            mask.apply(&mut domains);
        }
        domains
    }
}

/// Word-packed live domains: one bit per (variable, value-index), the
/// working set every kernel-based solver prunes and restores.
#[derive(Debug, Clone)]
pub struct BitDomains {
    shape: Arc<DomainShape>,
    words: Vec<u64>,
}

impl BitDomains {
    /// The live-value words of `var`.
    pub fn words(&self, var: VarId) -> &[u64] {
        &self.words[self.shape.word_range(var.index())]
    }

    /// Number of live values of `var`.
    pub fn count(&self, var: VarId) -> usize {
        self.words(var)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Whether `var` has no live value left (a wipeout).
    pub fn is_empty(&self, var: VarId) -> bool {
        self.words(var).iter().all(|&w| w == 0)
    }

    /// Whether value `index` of `var` is live.
    pub fn contains(&self, var: VarId, index: usize) -> bool {
        let words = self.words(var);
        index < self.shape.sizes[var.index()]
            && words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1
    }

    /// Removes value `index` of `var`; returns whether it was live.
    pub fn remove(&mut self, var: VarId, index: usize) -> bool {
        let range = self.shape.word_range(var.index());
        let word = &mut self.words[range][index / WORD_BITS];
        let bit = 1u64 << (index % WORD_BITS);
        let was = *word & bit != 0;
        *word &= !bit;
        was
    }

    /// The live values of `var` in ascending index order.
    pub fn live_values(&self, var: VarId) -> Vec<usize> {
        set_bits(self.words(var))
    }

    /// Calls `f` for every live value of `var` in ascending index order.
    pub fn for_each_live(&self, var: VarId, f: impl FnMut(usize)) {
        for_each_set_bit(self.words(var), f);
    }

    /// Copies out the live-word snapshot of `var` (for save/restore around
    /// forward checking).
    pub fn save(&self, var: VarId) -> Vec<u64> {
        self.words(var).to_vec()
    }

    /// Restores a snapshot taken by [`BitDomains::save`].
    ///
    /// # Panics
    ///
    /// Panics when the snapshot width does not match the variable.
    pub fn restore(&mut self, var: VarId, saved: &[u64]) {
        let range = self.shape.word_range(var.index());
        self.words[range].copy_from_slice(saved);
    }

    /// How many live values of `var` the row `row` would remove
    /// (`live & !row`), without modifying anything.
    pub fn would_remove(&self, var: VarId, row: &[u64]) -> usize {
        self.words(var)
            .iter()
            .zip(row)
            .map(|(&w, &r)| (w & !r).count_ones() as usize)
            .sum()
    }

    /// Intersects the live values of `var` with `row` (`live &= row`);
    /// returns how many values were removed.
    pub fn intersect(&mut self, var: VarId, row: &[u64]) -> usize {
        let range = self.shape.word_range(var.index());
        let mut removed = 0usize;
        for (w, &r) in self.words[range].iter_mut().zip(row) {
            removed += (*w & !r).count_ones() as usize;
            *w &= r;
        }
        removed
    }

    /// Whether `row` has at least one bit in common with the live values of
    /// `var` — the bitset form of "does this value still have support?".
    pub fn intersects(&self, var: VarId, row: &[u64]) -> bool {
        self.words(var).iter().zip(row).any(|(&w, &r)| w & r != 0)
    }

    /// Calls `f` for every live value of `var` that is also set in `row`,
    /// in ascending index order.
    pub fn for_each_common(&self, var: VarId, row: &[u64], mut f: impl FnMut(usize)) {
        for (wi, (&w, &r)) in self.words(var).iter().zip(row).enumerate() {
            let mut common = w & r;
            while common != 0 {
                let bit = common.trailing_zeros() as usize;
                f(wi * WORD_BITS + bit);
                common &= common - 1;
            }
        }
    }

    /// Popcount of `live(var) & row` — the number of live supports.
    pub fn intersection_count(&self, var: VarId, row: &[u64]) -> usize {
        self.words(var)
            .iter()
            .zip(row)
            .map(|(&w, &r)| (w & r).count_ones() as usize)
            .sum()
    }

    /// Restricts `var` to the given value indices (everything else is
    /// removed; indices outside the current live set stay dead).
    pub fn restrict_to(&mut self, var: VarId, keep: &[usize]) {
        let range = self.shape.word_range(var.index());
        let words = &mut self.words[range];
        let mut mask = vec![0u64; words.len()];
        for &index in keep {
            mask[index / WORD_BITS] |= 1 << (index % WORD_BITS);
        }
        for (w, m) in words.iter_mut().zip(mask) {
            *w &= m;
        }
    }
}

/// One masked variable of a [`DomainMask`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct MaskEntry {
    var: usize,
    /// Live-value words (`ceil(domain_size / 64)` of them).
    words: Box<[u64]>,
    /// Popcount of `words`, cached.
    live: usize,
}

/// A sparse live-domain overlay: the entire state of a mask-based
/// restricted view.
///
/// Only restricted variables have entries (a variable without one is fully
/// live), so a single-variable domain shard is one entry of a few words —
/// independent of how many pair entries the network's constraints hold.
/// Value indices are *original* domain indices: a mask never remaps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainMask {
    /// Sorted by variable index.
    entries: Vec<MaskEntry>,
}

impl DomainMask {
    /// A mask restricting nothing.
    pub fn new() -> Self {
        DomainMask::default()
    }

    /// Whether no variable is restricted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The variables this mask restricts, in ascending order.
    pub fn masked_variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.entries.iter().map(|e| VarId::new(e.var))
    }

    fn entry(&self, var: usize) -> Option<&MaskEntry> {
        self.entries
            .binary_search_by_key(&var, |e| e.var)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Intersects the mask of `var` (domain size `domain_size`) with the
    /// set of `keep` indices.
    ///
    /// # Errors
    ///
    /// Returns the offending index when `keep` mentions an index outside
    /// the domain or mentions the same index twice.
    pub fn restrict(
        &mut self,
        var: VarId,
        domain_size: usize,
        keep: &[usize],
    ) -> Result<(), usize> {
        let width = words_for(domain_size).max(1);
        let mut words = vec![0u64; width].into_boxed_slice();
        for &index in keep {
            if index >= domain_size {
                return Err(index);
            }
            let bit = 1u64 << (index % WORD_BITS);
            if words[index / WORD_BITS] & bit != 0 {
                return Err(index);
            }
            words[index / WORD_BITS] |= bit;
        }
        match self.entries.binary_search_by_key(&var.index(), |e| e.var) {
            Ok(i) => {
                let entry = &mut self.entries[i];
                for (w, &k) in entry.words.iter_mut().zip(words.iter()) {
                    *w &= k;
                }
                entry.live = entry.words.iter().map(|w| w.count_ones() as usize).sum();
            }
            Err(i) => {
                let live = words.iter().map(|w| w.count_ones() as usize).sum();
                self.entries.insert(
                    i,
                    MaskEntry {
                        var: var.index(),
                        words,
                        live,
                    },
                );
            }
        }
        Ok(())
    }

    /// Number of live values of `var`, given its full domain size.
    pub fn live_count(&self, var: VarId, domain_size: usize) -> usize {
        self.entry(var.index()).map_or(domain_size, |e| e.live)
    }

    /// Whether value `index` of `var` is live under this mask.
    pub fn is_live(&self, var: VarId, index: usize) -> bool {
        match self.entry(var.index()) {
            Some(e) => e.words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1,
            None => true,
        }
    }

    /// The live values of `var` in ascending index order, given its full
    /// domain size.
    pub fn live_values(&self, var: VarId, domain_size: usize) -> Vec<usize> {
        match self.entry(var.index()) {
            Some(e) => set_bits(&e.words),
            None => (0..domain_size).collect(),
        }
    }

    /// Intersects this mask into a live-domain working set.
    pub fn apply(&self, domains: &mut BitDomains) {
        for entry in &self.entries {
            domains.intersect(VarId::new(entry.var), &entry.words);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn constraint(pairs: &[(usize, usize)]) -> BinaryConstraint {
        BinaryConstraint::new(
            VarId::new(0),
            VarId::new(1),
            pairs.iter().copied().collect::<HashSet<_>>(),
        )
    }

    fn kernel_2x(sizes: (usize, usize), pairs: &[(usize, usize)]) -> BitKernel {
        let c = Arc::new(constraint(pairs));
        BitKernel::build(
            vec![sizes.0, sizes.1],
            std::slice::from_ref(&c),
            &[vec![0], vec![0]],
        )
    }

    #[test]
    fn bit_constraint_matches_pairs_in_both_orientations() {
        let kernel = kernel_2x((3, 2), &[(0, 1), (1, 0), (2, 1)]);
        let c = kernel.constraint(0);
        assert!(c.allows(0, 1));
        assert!(!c.allows(0, 0));
        assert!(c.allows(2, 1));
        assert!(kernel.allows(0, VarId::new(0), 1, 0));
        assert!(kernel.allows(0, VarId::new(1), 0, 1));
        assert!(!kernel.allows(0, VarId::new(1), 1, 1));
        // Rows agree with the pair list.
        assert_eq!(set_bits(c.row(true, 0)), vec![1]);
        assert_eq!(set_bits(c.row(false, 1)), vec![0, 2]);
        // Full-domain support counts.
        assert_eq!(c.full_support(true, 0), 1);
        assert_eq!(c.full_support(false, 1), 2);
        assert_eq!(c.full_support(false, 0), 1);
    }

    #[test]
    fn full_domains_round_trip_and_prune() {
        let kernel = kernel_2x((70, 3), &[(0, 0)]);
        let mut live = kernel.full_domains();
        let a = VarId::new(0);
        assert_eq!(live.count(a), 70);
        assert!(live.contains(a, 69));
        assert!(!live.contains(a, 70));
        assert!(live.remove(a, 69));
        assert!(!live.remove(a, 69));
        assert_eq!(live.count(a), 69);
        let saved = live.save(a);
        live.restrict_to(a, &[1, 5, 64]);
        assert_eq!(live.live_values(a), vec![1, 5, 64]);
        live.restore(a, &saved);
        assert_eq!(live.count(a), 69);
    }

    #[test]
    fn intersect_counts_removals() {
        let kernel = kernel_2x((5, 5), &[(0, 0), (1, 1), (4, 4)]);
        let mut live = kernel.full_domains();
        let b = VarId::new(1);
        // Row of first=0 supports only second=0.
        let row: Vec<u64> = kernel.constraint(0).row(true, 0).to_vec();
        assert_eq!(live.would_remove(b, &row), 4);
        assert!(live.intersects(b, &row));
        assert_eq!(live.intersection_count(b, &row), 1);
        assert_eq!(live.intersect(b, &row), 4);
        assert_eq!(live.live_values(b), vec![0]);
        assert!(!live.is_empty(b));
        let empty_row = vec![0u64; row.len()];
        live.intersect(b, &empty_row);
        assert!(live.is_empty(b));
    }

    #[test]
    fn domain_mask_restricts_and_intersects() {
        let mut mask = DomainMask::new();
        assert!(mask.is_empty());
        let v = VarId::new(0);
        mask.restrict(v, 5, &[0, 3, 4]).unwrap();
        assert_eq!(mask.live_count(v, 5), 3);
        assert!(mask.is_live(v, 3));
        assert!(!mask.is_live(v, 1));
        // A second restriction intersects.
        mask.restrict(v, 5, &[3, 1]).unwrap();
        assert_eq!(mask.live_values(v, 5), vec![3]);
        // Unmasked variables are fully live.
        assert_eq!(mask.live_values(VarId::new(1), 2), vec![0, 1]);
        assert_eq!(mask.masked_variables().collect::<Vec<_>>(), vec![v]);
        // Errors: out of range and duplicates.
        assert_eq!(mask.restrict(v, 5, &[9]), Err(9));
        assert_eq!(mask.restrict(v, 5, &[2, 2]), Err(2));
    }

    #[test]
    fn mask_applies_to_domains() {
        let kernel = kernel_2x((4, 3), &[(0, 0)]);
        let mut mask = DomainMask::new();
        mask.restrict(VarId::new(0), 4, &[1, 2]).unwrap();
        let live = kernel.masked_domains(Some(&mask));
        assert_eq!(live.live_values(VarId::new(0)), vec![1, 2]);
        assert_eq!(live.count(VarId::new(1)), 3);
        let unmasked = kernel.masked_domains(None);
        assert_eq!(unmasked.count(VarId::new(0)), 4);
    }
}
