//! The word-packed execution kernel behind every solver hot path.
//!
//! A [`crate::ConstraintNetwork`] is the *builder-facing* form of a network:
//! domains hold real values, constraints are `HashSet`s of allowed index
//! pairs.  That shape is convenient to construct and query one pair at a
//! time, but the solvers ask "does `S_ij` allow `(a, b)`?" millions of times
//! per solve, and a hash probe per query is where nearly all of the solve
//! time goes.
//!
//! The [`BitKernel`] is the *execution* form the network compiles itself
//! into, lazily and at most once per storage (the handle is cached inside
//! the shared [`crate::NetworkStorage`], so clones, restricted views and
//! session-cached networks all reuse the identical kernel —
//! `Arc::ptr_eq`-verifiable):
//!
//! * every constraint becomes a pair of **bit-matrices** ([`BitConstraint`]):
//!   for each value of one endpoint, a row of `u64` words whose set bits are
//!   the supported values of the other endpoint — both orientations are
//!   precomputed, so `allows` is a shift-and-mask and "revise `x` against
//!   `y`" is a word-AND plus popcount,
//! * per-value **support counts** over the full domains are precomputed,
//!   giving the value-ordering heuristics an O(1) fast path while domains
//!   are unpruned,
//! * live domains become word-packed masks ([`BitDomains`]): forward
//!   checking is `live &= row`, wipeout detection is a zero test, and
//!   saving/restoring a domain is a copy of a handful of words.
//!
//! [`DomainMask`] is the persistent overlay behind mask-based restricted
//! views ([`crate::ConstraintNetwork::restricted`]): a tiny sorted list of
//! `(variable, bit-mask)` entries that the solvers intersect into their
//! initial live domains.  A domain shard therefore allocates a few words —
//! never a pair table.
//!
//! # The weighted kernel
//!
//! [`WeightKernel`] is the weighted counterpart of [`BitKernel`]: per
//! constraint, a **dense weight matrix** in both orientations
//! ([`WeightTable`], mirroring the bit-matrix layout so "the weight of every
//! partner of one value" is a contiguous row) plus per-value **row-maximum
//! aggregates** over the allowed pairs ([`WeightConstraint`]), which give
//! branch and bound its optimistic upper bounds and the weighted value
//! ordering its O(1) scores.  It is compiled lazily, at most once per
//! weighted spine (see [`crate::WeightedNetwork`]), and shared by clones,
//! restricted views and domain shards; a `set_weight` recompiles **only the
//! touched constraint's** aggregates, reusing every other
//! [`WeightConstraint`] by pointer.
//!
//! # Incremental recompilation
//!
//! Both kernels recompile incrementally: a copy-on-write mutation of the
//! builder-facing network patches only the affected constraint's
//! bit-matrix/weight-matrix instead of discarding the whole compiled
//! kernel (the network mutators and `set_weight` install the patched
//! kernel; untouched compiled matrices are reused by pointer).  The
//! process-wide [`bit_constraint_compiles`] / [`weight_constraint_compiles`]
//! counters expose how many per-constraint compilations ever ran, so audits
//! can pin "only the touched constraint was recompiled" exactly.

use crate::assignment::Assignment;
use crate::constraint::BinaryConstraint;
use crate::network::VarId;
use crate::simd::{self, LANE_WORDS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of [`BitConstraint`] compilations (monotonic; see
/// [`bit_constraint_compiles`]).
static BIT_CONSTRAINT_COMPILES: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`WeightConstraint`] compilations (monotonic; see
/// [`weight_constraint_compiles`]).
static WEIGHT_CONSTRAINT_COMPILES: AtomicU64 = AtomicU64::new(0);

/// How many per-constraint **bit-matrix** compilations have run in this
/// process so far.  Incremental-recompilation audits snapshot this around a
/// mutation to prove that only the touched constraint was recompiled.
/// (Process-wide and monotonic: concurrent solves also advance it, so
/// audits must run the measured section single-threaded.)
pub fn bit_constraint_compiles() -> u64 {
    BIT_CONSTRAINT_COMPILES.load(Ordering::Relaxed)
}

/// How many per-constraint **weight-matrix** compilations have run in this
/// process so far (the [`WeightConstraint`] counterpart of
/// [`bit_constraint_compiles`]).
pub fn weight_constraint_compiles() -> u64 {
    WEIGHT_CONSTRAINT_COMPILES.load(Ordering::Relaxed)
}

/// Bits per mask word.
const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `bits` bits.
fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Number of `u64` words a variable's live span or a bit-matrix row
/// occupies: the bit minimum rounded up to a whole number of
/// [`LANE_WORDS`]-word lane blocks (at least one), so the SIMD hot loops
/// run with an empty remainder and every row starts block-aligned.
/// Padding bits are never set — [`full_word`] yields zero once the real
/// bits run out — which the phantom-value regression tests pin.
fn padded_words(bits: usize) -> usize {
    words_for(bits).next_multiple_of(LANE_WORDS).max(LANE_WORDS)
}

/// A full mask for `bits` bits, one valid word at a time.
fn full_word(bits_left: usize) -> u64 {
    if bits_left >= WORD_BITS {
        u64::MAX
    } else {
        (1u64 << bits_left) - 1
    }
}

/// Iterates the set bits of a word slice in ascending order.
fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            f(wi * WORD_BITS + bit);
            w &= w - 1;
        }
    }
}

/// Collects the set bits of a word slice in ascending order.
fn set_bits(words: &[u64]) -> Vec<usize> {
    let mut out = Vec::with_capacity(words.iter().map(|w| w.count_ones() as usize).sum());
    for_each_set_bit(words, |i| out.push(i));
    out
}

/// The per-variable word layout shared by a kernel and every
/// [`BitDomains`] working set derived from it.
#[derive(Debug)]
pub struct DomainShape {
    /// Domain size of each variable.
    sizes: Vec<usize>,
    /// Start word of each variable's mask in the flat word vector.
    offsets: Vec<usize>,
    /// Total number of words across all variables.
    total_words: usize,
}

impl DomainShape {
    fn new(sizes: Vec<usize>) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut total = 0usize;
        for &size in &sizes {
            offsets.push(total);
            total += padded_words(size);
        }
        DomainShape {
            sizes,
            offsets,
            total_words: total,
        }
    }

    fn word_range(&self, var: usize) -> std::ops::Range<usize> {
        let start = self.offsets[var];
        start..start + padded_words(self.sizes[var])
    }
}

/// One constraint compiled to bit-matrices, both orientations precomputed.
#[derive(Debug)]
pub struct BitConstraint {
    first: VarId,
    second: VarId,
    second_size: usize,
    /// Words per `fwd` row (`padded_words(second_size)`: lane aligned).
    fwd_stride: usize,
    /// Words per `rev` row (`padded_words(first_size)`: lane aligned).
    rev_stride: usize,
    /// Row `a`: the values of `second` allowed with `first = a`.  Rows are
    /// contiguous in value order, so a revise walks the block block-major.
    fwd: Vec<u64>,
    /// Row `b`: the values of `first` allowed with `second = b`.
    rev: Vec<u64>,
    /// Per-value support counts over the *full* domains: `support_fwd[a]`
    /// is the number of `second` values allowed with `first = a`.
    support_fwd: Vec<u32>,
    /// `support_rev[b]` is the number of `first` values allowed with
    /// `second = b`.
    support_rev: Vec<u32>,
    /// Bit `a` set iff `support_fwd[a] > 0`, padded to the `first`
    /// endpoint's lane width: revising `first` against an unpruned
    /// `second` is a single lane-wide AND with this mask.
    support_nonzero_fwd: Vec<u64>,
    /// Bit `b` set iff `support_rev[b] > 0` (the `second`-endpoint mask).
    support_nonzero_rev: Vec<u64>,
}

impl BitConstraint {
    fn build(constraint: &BinaryConstraint, first_size: usize, second_size: usize) -> Self {
        BIT_CONSTRAINT_COMPILES.fetch_add(1, Ordering::Relaxed);
        let fwd_stride = padded_words(second_size);
        let rev_stride = padded_words(first_size);
        let mut fwd = vec![0u64; first_size * fwd_stride];
        let mut rev = vec![0u64; second_size * rev_stride];
        let mut support_fwd = vec![0u32; first_size];
        let mut support_rev = vec![0u32; second_size];
        for &(a, b) in constraint.allowed_pairs() {
            fwd[a * fwd_stride + b / WORD_BITS] |= 1 << (b % WORD_BITS);
            rev[b * rev_stride + a / WORD_BITS] |= 1 << (a % WORD_BITS);
            support_fwd[a] += 1;
            support_rev[b] += 1;
        }
        // The endpoint-value masks share their endpoint's live-span width:
        // `first` values are rev-row sized, `second` values fwd-row sized.
        let mut support_nonzero_fwd = vec![0u64; rev_stride];
        for (a, &s) in support_fwd.iter().enumerate() {
            if s > 0 {
                support_nonzero_fwd[a / WORD_BITS] |= 1 << (a % WORD_BITS);
            }
        }
        let mut support_nonzero_rev = vec![0u64; fwd_stride];
        for (b, &s) in support_rev.iter().enumerate() {
            if s > 0 {
                support_nonzero_rev[b / WORD_BITS] |= 1 << (b % WORD_BITS);
            }
        }
        BitConstraint {
            first: constraint.first(),
            second: constraint.second(),
            second_size,
            fwd_stride,
            rev_stride,
            fwd,
            rev,
            support_fwd,
            support_rev,
            support_nonzero_fwd,
            support_nonzero_rev,
        }
    }

    /// The first endpoint.
    pub fn first(&self) -> VarId {
        self.first
    }

    /// The second endpoint.
    pub fn second(&self) -> VarId {
        self.second
    }

    /// The support row of `value` of the endpoint selected by
    /// `var_is_first`: the set bits are the values of the *other* endpoint
    /// compatible with it.
    pub fn row(&self, var_is_first: bool, value: usize) -> &[u64] {
        if var_is_first {
            &self.fwd[value * self.fwd_stride..(value + 1) * self.fwd_stride]
        } else {
            &self.rev[value * self.rev_stride..(value + 1) * self.rev_stride]
        }
    }

    /// Whether the pair `(a, b)` (oriented `first → second`) is allowed.
    pub fn allows(&self, a: usize, b: usize) -> bool {
        debug_assert!(b < self.second_size);
        self.fwd[a * self.fwd_stride + b / WORD_BITS] >> (b % WORD_BITS) & 1 == 1
    }

    /// The number of values of the *other* endpoint supporting `value` of
    /// the endpoint selected by `var_is_first`, over the full domain.
    pub fn full_support(&self, var_is_first: bool, value: usize) -> u32 {
        if var_is_first {
            self.support_fwd[value]
        } else {
            self.support_rev[value]
        }
    }

    /// The values of the endpoint selected by `var_is_first` that have at
    /// least one support over the *full* partner domain, as a lane-padded
    /// word mask.  While the partner's domain is unpruned, revising against
    /// it degenerates to a single lane-wide AND with this mask.
    pub fn support_nonzero(&self, var_is_first: bool) -> &[u64] {
        if var_is_first {
            &self.support_nonzero_fwd
        } else {
            &self.support_nonzero_rev
        }
    }

    /// Block-major kernel revise: clears every live value of the endpoint
    /// selected by `x_is_first` (live words `x_live`, mutated in place)
    /// whose support row shares no bit with `y_live`.  The constraint's
    /// rows are one contiguous lane-aligned block walked in ascending value
    /// order, so `y_live` and the streamed rows stay cache-hot across the
    /// whole revision.  Returns `(removed, bytes_touched)` — the byte count
    /// covers both live spans plus every row probed, feeding the
    /// bytes-touched-per-revision audit in the perf gate.
    pub fn revise_live(&self, x_is_first: bool, x_live: &mut [u64], y_live: &[u64]) -> (u64, u64) {
        let (rows, stride) = if x_is_first {
            (&self.fwd, self.fwd_stride)
        } else {
            (&self.rev, self.rev_stride)
        };
        let mut removed = 0u64;
        let mut probed = 0u64;
        for (wi, slot) in x_live.iter_mut().enumerate() {
            let mut word = *slot;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let value = wi * WORD_BITS + bit;
                probed += 1;
                if !simd::and_any(&rows[value * stride..(value + 1) * stride], y_live) {
                    *slot &= !(1u64 << bit);
                    removed += 1;
                }
            }
        }
        let bytes = 8 * (x_live.len() as u64 + y_live.len() as u64 + probed * stride as u64);
        (removed, bytes)
    }
}

/// One entry of a variable's kernel adjacency list: the constraint, the
/// neighbour it leads to, and the orientation of this variable in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelEdge {
    /// Index of the constraint (same indexing as the network's constraint
    /// list).
    pub constraint: usize,
    /// The other endpoint.
    pub other: VarId,
    /// Whether the variable owning this adjacency list is the constraint's
    /// `first` endpoint.
    pub var_is_first: bool,
}

/// The compiled execution form of a constraint network: bit-matrix
/// constraints, per-value support counts and the word layout of the live
/// domains.
///
/// Built once per [`crate::NetworkStorage`] (see
/// [`crate::ConstraintNetwork::kernel`]) and shared by every clone and
/// restricted view of the network.
#[derive(Debug)]
pub struct BitKernel {
    shape: Arc<DomainShape>,
    /// Individually `Arc`'d so incremental recompilation can patch one
    /// constraint and reuse every other compiled matrix by pointer.
    constraints: Vec<Arc<BitConstraint>>,
    adjacency: Vec<Vec<KernelEdge>>,
}

impl BitKernel {
    /// Compiles a kernel from the storage-level tables.
    pub(crate) fn build(
        domain_sizes: Vec<usize>,
        constraints: &[Arc<BinaryConstraint>],
        adjacency: &[Vec<usize>],
    ) -> Self {
        let compiled: Vec<Arc<BitConstraint>> = constraints
            .iter()
            .map(|c| {
                Arc::new(BitConstraint::build(
                    c,
                    domain_sizes[c.first().index()],
                    domain_sizes[c.second().index()],
                ))
            })
            .collect();
        // The kernel adjacency mirrors the network's per-variable constraint
        // lists (same order), with the orientation resolved once.
        let edges: Vec<Vec<KernelEdge>> = adjacency
            .iter()
            .enumerate()
            .map(|(v, list)| {
                list.iter()
                    .map(|&ci| {
                        let c = &compiled[ci];
                        let var_is_first = c.first().index() == v;
                        KernelEdge {
                            constraint: ci,
                            other: if var_is_first { c.second() } else { c.first() },
                            var_is_first,
                        }
                    })
                    .collect()
            })
            .collect();
        BitKernel {
            shape: Arc::new(DomainShape::new(domain_sizes)),
            constraints: compiled,
            adjacency: edges,
        }
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.shape.sizes.len()
    }

    /// Full domain size of a variable.
    pub fn domain_size(&self, var: VarId) -> usize {
        self.shape.sizes[var.index()]
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The compiled constraint at `index` (same indexing as
    /// [`crate::ConstraintNetwork::constraints`]).
    pub fn constraint(&self, index: usize) -> &BitConstraint {
        &self.constraints[index]
    }

    /// The shared handle of one compiled constraint (for structural-sharing
    /// assertions: an incrementally patched kernel reuses every untouched
    /// constraint's matrix by pointer).
    pub fn constraint_handle(&self, index: usize) -> &Arc<BitConstraint> {
        &self.constraints[index]
    }

    /// A kernel extended with one fresh (unconstrained) variable: every
    /// compiled constraint matrix is reused by pointer, only the word
    /// layout and adjacency grow — the incremental-recompilation path of
    /// [`crate::ConstraintNetwork::add_variable`].
    pub(crate) fn with_added_variable(&self, domain_size: usize) -> BitKernel {
        let mut sizes = self.shape.sizes.clone();
        sizes.push(domain_size);
        let mut adjacency = self.adjacency.clone();
        adjacency.push(Vec::new());
        BitKernel {
            shape: Arc::new(DomainShape::new(sizes)),
            constraints: self.constraints.clone(),
            adjacency,
        }
    }

    /// A kernel with constraint `ci` recompiled from `constraint` (the
    /// merge path of [`crate::ConstraintNetwork::add_constraint`]): the
    /// shape and every *other* constraint matrix are reused by pointer.
    pub(crate) fn with_patched_constraint(&self, ci: usize, constraint: &BinaryConstraint) -> Self {
        let mut constraints = self.constraints.clone();
        constraints[ci] = Arc::new(BitConstraint::build(
            constraint,
            self.shape.sizes[constraint.first().index()],
            self.shape.sizes[constraint.second().index()],
        ));
        BitKernel {
            shape: Arc::clone(&self.shape),
            constraints,
            adjacency: self.adjacency.clone(),
        }
    }

    /// A kernel with one freshly compiled constraint appended (the
    /// new-constraint path of [`crate::ConstraintNetwork::add_constraint`]):
    /// only the new matrix is built; the endpoints' adjacency lists gain one
    /// edge each, mirroring the network's adjacency order.
    pub(crate) fn with_added_constraint(&self, constraint: &BinaryConstraint) -> Self {
        let ci = self.constraints.len();
        let (first, second) = (constraint.first(), constraint.second());
        let mut constraints = self.constraints.clone();
        constraints.push(Arc::new(BitConstraint::build(
            constraint,
            self.shape.sizes[first.index()],
            self.shape.sizes[second.index()],
        )));
        let mut adjacency = self.adjacency.clone();
        adjacency[first.index()].push(KernelEdge {
            constraint: ci,
            other: second,
            var_is_first: true,
        });
        adjacency[second.index()].push(KernelEdge {
            constraint: ci,
            other: first,
            var_is_first: false,
        });
        BitKernel {
            shape: Arc::clone(&self.shape),
            constraints,
            adjacency,
        }
    }

    /// The kernel adjacency of `var`: one edge per constraint involving it,
    /// in the network's adjacency order.
    pub fn edges(&self, var: VarId) -> &[KernelEdge] {
        &self.adjacency[var.index()]
    }

    /// Whether constraint `ci` allows `var = value` together with
    /// `other = other_value` (`var` may be either endpoint).
    pub fn allows(&self, ci: usize, var: VarId, value: usize, other_value: usize) -> bool {
        let c = &self.constraints[ci];
        if var == c.first {
            c.allows(value, other_value)
        } else {
            c.allows(other_value, value)
        }
    }

    /// Whether assigning `value` to `var` violates some constraint against
    /// an already-assigned variable (early exit on the first conflict; one
    /// consistency check is counted per probed neighbour).
    pub fn conflicts_any(
        &self,
        assignment: &Assignment,
        var: VarId,
        value: usize,
        checks: &mut u64,
    ) -> bool {
        for edge in self.edges(var) {
            if let Some(other_value) = assignment.get(edge.other) {
                *checks += 1;
                let c = &self.constraints[edge.constraint];
                let allowed = if edge.var_is_first {
                    c.allows(value, other_value)
                } else {
                    c.allows(other_value, value)
                };
                if !allowed {
                    return true;
                }
            }
        }
        false
    }

    /// The consistent-partial-instantiation test in conflict-set form:
    /// appends every already-assigned variable whose constraint rejects
    /// `var = value` to `conflicts` (no early exit — backjumping needs the
    /// full set); counts one consistency check per probed neighbour.
    pub fn collect_conflicts(
        &self,
        assignment: &Assignment,
        var: VarId,
        value: usize,
        checks: &mut u64,
        conflicts: &mut Vec<VarId>,
    ) {
        for edge in self.edges(var) {
            if let Some(other_value) = assignment.get(edge.other) {
                *checks += 1;
                let c = &self.constraints[edge.constraint];
                let allowed = if edge.var_is_first {
                    c.allows(value, other_value)
                } else {
                    c.allows(other_value, value)
                };
                if !allowed {
                    conflicts.push(edge.other);
                }
            }
        }
    }

    /// A fresh live-domain working set with every value of every variable
    /// present.
    pub fn full_domains(&self) -> BitDomains {
        let mut words = vec![0u64; self.shape.total_words];
        for (v, &size) in self.shape.sizes.iter().enumerate() {
            let range = self.shape.word_range(v);
            let mut left = size;
            for w in &mut words[range] {
                *w = full_word(left);
                left = left.saturating_sub(WORD_BITS);
            }
        }
        BitDomains {
            shape: Arc::clone(&self.shape),
            words,
        }
    }

    /// [`BitKernel::full_domains`] with an optional [`DomainMask`] overlay
    /// already intersected in — the starting point of every solver run on a
    /// (possibly restricted) network.
    pub fn masked_domains(&self, mask: Option<&DomainMask>) -> BitDomains {
        let mut domains = self.full_domains();
        if let Some(mask) = mask {
            mask.apply(&mut domains);
        }
        domains
    }
}

/// Dense per-constraint weight matrix in both orientations, mirroring the
/// bit-matrix layout of [`BitConstraint`]: `fwd` is indexed
/// `a * second_size + b`, `rev` is the transpose — so "the weight of every
/// partner of one value" is a contiguous row scan in either direction, and
/// a weight read is one indexed load instead of a hash probe.
///
/// This is the builder-side copy-on-write unit of
/// [`crate::WeightedNetwork`]: `set_weight` detaches and patches exactly one
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTable {
    first_size: usize,
    second_size: usize,
    /// `fwd[a * second_size + b]` = weight of pair `(a, b)`.
    fwd: Vec<f64>,
    /// `rev[b * first_size + a]` = weight of pair `(a, b)` (transposed).
    rev: Vec<f64>,
}

impl WeightTable {
    /// A table with every entry at `weight` (the state of a constraint no
    /// `set_weight` has touched, materialized).
    pub fn uniform(first_size: usize, second_size: usize, weight: f64) -> Self {
        WeightTable {
            first_size,
            second_size,
            fwd: vec![weight; first_size * second_size],
            rev: vec![weight; first_size * second_size],
        }
    }

    /// Domain size of the constraint's `first` endpoint.
    pub fn first_size(&self) -> usize {
        self.first_size
    }

    /// Domain size of the constraint's `second` endpoint.
    pub fn second_size(&self) -> usize {
        self.second_size
    }

    /// The weight of pair `(a, b)` (oriented `first → second`).
    ///
    /// Indices must be in range (`a < first_size`, `b < second_size`):
    /// this is the unchecked-shape hot-path read — an out-of-range `b`
    /// would alias another row's entry, so it is a debug assertion.
    pub fn get(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a < self.first_size && b < self.second_size);
        self.fwd[a * self.second_size + b]
    }

    /// Sets the weight of pair `(a, b)`, keeping both orientations in sync.
    pub fn set(&mut self, a: usize, b: usize, weight: f64) {
        debug_assert!(a < self.first_size && b < self.second_size);
        self.fwd[a * self.second_size + b] = weight;
        self.rev[b * self.first_size + a] = weight;
    }

    /// Adds `delta` to the weight of pair `(a, b)` — the accumulation form
    /// weight derivations use (no intermediate map needed).
    pub fn add(&mut self, a: usize, b: usize, delta: f64) {
        debug_assert!(a < self.first_size && b < self.second_size);
        self.fwd[a * self.second_size + b] += delta;
        self.rev[b * self.first_size + a] = self.fwd[a * self.second_size + b];
    }

    /// The dense weight row of `value` of the endpoint selected by
    /// `var_is_first`: entry `i` is the weight of pairing `value` with the
    /// *other* endpoint's value `i` (same row semantics as
    /// [`BitConstraint::row`]).
    pub fn row(&self, var_is_first: bool, value: usize) -> &[f64] {
        if var_is_first {
            &self.fwd[value * self.second_size..(value + 1) * self.second_size]
        } else {
            &self.rev[value * self.first_size..(value + 1) * self.first_size]
        }
    }

    /// Oriented read: the weight of `value` (of the endpoint selected by
    /// `var_is_first`) paired with `other` — a contiguous-row load in either
    /// orientation.
    pub fn oriented(&self, var_is_first: bool, value: usize, other: usize) -> f64 {
        if var_is_first {
            self.fwd[value * self.second_size + other]
        } else {
            self.rev[value * self.first_size + other]
        }
    }

    /// Number of dense entries held across both orientations (the audit
    /// metric behind "zero dense entries copied on a shard split").
    pub fn dense_entries(&self) -> usize {
        self.fwd.len() + self.rev.len()
    }
}

/// One constraint of a [`WeightKernel`]: the (shared) dense weight table
/// plus per-value aggregates over the constraint's *allowed* pairs.
///
/// The aggregates are what the weighted solvers lean on: `row_max` answers
/// "the best weight this value can still gain on this constraint" in O(1)
/// while the partner's domain is unpruned, and [`WeightConstraint::max_allowed`]
/// is the per-constraint optimistic bound of branch and bound on an
/// unrestricted network.
#[derive(Debug)]
pub struct WeightConstraint {
    /// Shared by pointer with the builder-side spine; `None` when every
    /// pair carries the default weight (nothing was ever set).
    table: Option<Arc<WeightTable>>,
    default_weight: f64,
    /// `row_max_fwd[a]` = max weight among allowed pairs with `first = a`
    /// (`NEG_INFINITY` when the value has no allowed pair).
    row_max_fwd: Vec<f64>,
    /// `row_max_rev[b]` = max weight among allowed pairs with `second = b`.
    row_max_rev: Vec<f64>,
    /// Max over all allowed pairs (`NEG_INFINITY` when the constraint
    /// allows nothing).
    max_allowed: f64,
}

impl WeightConstraint {
    fn build(
        table: Option<&Arc<WeightTable>>,
        bit: &BitConstraint,
        first_size: usize,
        second_size: usize,
        default_weight: f64,
    ) -> Self {
        WEIGHT_CONSTRAINT_COMPILES.fetch_add(1, Ordering::Relaxed);
        let mut row_max_fwd = vec![f64::NEG_INFINITY; first_size];
        let mut row_max_rev = vec![f64::NEG_INFINITY; second_size];
        let mut max_allowed = f64::NEG_INFINITY;
        for (a, row_max) in row_max_fwd.iter_mut().enumerate() {
            for_each_set_bit(bit.row(true, a), |b| {
                let weight = table.map_or(default_weight, |t| t.get(a, b));
                *row_max = row_max.max(weight);
                row_max_rev[b] = row_max_rev[b].max(weight);
                max_allowed = max_allowed.max(weight);
            });
        }
        WeightConstraint {
            table: table.cloned(),
            default_weight,
            row_max_fwd,
            row_max_rev,
            max_allowed,
        }
    }

    /// The weight of pair `(a, b)` (oriented `first → second`).
    pub fn get(&self, a: usize, b: usize) -> f64 {
        match &self.table {
            Some(table) => table.get(a, b),
            None => self.default_weight,
        }
    }

    /// Oriented read, mirroring [`WeightTable::oriented`].
    pub fn oriented(&self, var_is_first: bool, value: usize, other: usize) -> f64 {
        match &self.table {
            Some(table) => table.oriented(var_is_first, value, other),
            None => self.default_weight,
        }
    }

    /// The best weight among allowed pairs of `value` of the endpoint
    /// selected by `var_is_first`, over the full partner domain
    /// (`NEG_INFINITY` when the value has no allowed pair).
    pub fn row_max(&self, var_is_first: bool, value: usize) -> f64 {
        if var_is_first {
            self.row_max_fwd[value]
        } else {
            self.row_max_rev[value]
        }
    }

    /// The best weight among all allowed pairs (`NEG_INFINITY` when the
    /// constraint allows nothing).
    pub fn max_allowed(&self) -> f64 {
        self.max_allowed
    }

    /// The shared dense table (for structural-sharing assertions; `None`
    /// means every pair carries the default weight).
    pub fn table(&self) -> Option<&Arc<WeightTable>> {
        self.table.as_ref()
    }

    /// The best weight among pairs of `value` (of the endpoint selected by
    /// `var_is_first`) whose partner is both allowed by `bit` and set in
    /// `partner_live`, plus the first partner value attaining it —
    /// `(NEG_INFINITY, u32::MAX)` when no live supported partner remains.
    ///
    /// One [`simd::masked_row_max`] over the lane-padded bit-row for dense
    /// tables; uniform constraints need only the first common bit.
    pub fn live_row_max(
        &self,
        bit: &BitConstraint,
        var_is_first: bool,
        value: usize,
        partner_live: &[u64],
    ) -> (f64, u32) {
        let mask = bit.row(var_is_first, value);
        match &self.table {
            Some(table) => simd::masked_row_max(table.row(var_is_first, value), mask, partner_live),
            None => {
                for (wi, (x, y)) in mask.iter().zip(partner_live).enumerate() {
                    let m = x & y;
                    if m != 0 {
                        let first = (wi * 64) as u32 + m.trailing_zeros();
                        return (self.default_weight, first);
                    }
                }
                (f64::NEG_INFINITY, u32::MAX)
            }
        }
    }
}

/// The compiled execution form of a weighted network: one
/// [`WeightConstraint`] per constraint, each individually `Arc`'d so a
/// weight mutation recompiles only the touched constraint's aggregates and
/// reuses every other matrix by pointer.
///
/// Built lazily at most once per weighted spine (see
/// [`crate::WeightedNetwork::weight_kernel`]) and shared by clones,
/// restricted views and domain shards.
#[derive(Debug)]
pub struct WeightKernel {
    default_weight: f64,
    constraints: Vec<Arc<WeightConstraint>>,
}

impl WeightKernel {
    /// Compiles the kernel from the builder-side dense tables (`None` =
    /// uniform default) against the hard network's compiled [`BitKernel`].
    pub(crate) fn build(
        tables: &[Option<Arc<WeightTable>>],
        kernel: &BitKernel,
        default_weight: f64,
    ) -> Self {
        let constraints = tables
            .iter()
            .enumerate()
            .map(|(ci, table)| {
                let bit = kernel.constraint(ci);
                Arc::new(WeightConstraint::build(
                    table.as_ref(),
                    bit,
                    kernel.domain_size(bit.first()),
                    kernel.domain_size(bit.second()),
                    default_weight,
                ))
            })
            .collect();
        WeightKernel {
            default_weight,
            constraints,
        }
    }

    /// A kernel with constraint `ci` recompiled from `table` — the
    /// incremental-recompilation path of `set_weight`: every untouched
    /// [`WeightConstraint`] is reused by pointer.
    pub(crate) fn patched(
        &self,
        ci: usize,
        table: Option<&Arc<WeightTable>>,
        kernel: &BitKernel,
    ) -> Self {
        let mut constraints = self.constraints.clone();
        let bit = kernel.constraint(ci);
        constraints[ci] = Arc::new(WeightConstraint::build(
            table,
            bit,
            kernel.domain_size(bit.first()),
            kernel.domain_size(bit.second()),
            self.default_weight,
        ));
        WeightKernel {
            default_weight: self.default_weight,
            constraints,
        }
    }

    /// The weight every unset pair carries.
    pub fn default_weight(&self) -> f64 {
        self.default_weight
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The compiled weight constraint at `index` (same indexing as
    /// [`crate::ConstraintNetwork::constraints`]).
    pub fn constraint(&self, index: usize) -> &WeightConstraint {
        &self.constraints[index]
    }

    /// The shared handle of one compiled weight constraint (for
    /// structural-sharing assertions).
    pub fn constraint_handle(&self, index: usize) -> &Arc<WeightConstraint> {
        &self.constraints[index]
    }

    /// The weight of pair `(a, b)` of constraint `ci` — the dense read that
    /// replaced the per-pair hash probe on every weighted hot path.
    pub fn weight(&self, ci: usize, a: usize, b: usize) -> f64 {
        self.constraints[ci].get(a, b)
    }

    /// Builds the live-masked row-max working set over `live` (see
    /// [`LiveRowMax`]) — the aggregates the soft-AC-3 propagator maintains
    /// incrementally as search shrinks domains.
    pub fn live_row_max(&self, kernel: &BitKernel, live: &BitDomains) -> LiveRowMax {
        LiveRowMax::build(self, kernel, live)
    }
}

/// Live-masked per-value row maxima for every constraint of a
/// [`WeightKernel`], plus each constraint's max over live allowed pairs.
///
/// Where [`WeightConstraint::row_max`] is a compile-time aggregate over the
/// *full* partner domain, these entries are masked by the current live
/// domains and maintained incrementally as search deletes values: an entry
/// is rescanned (one [`WeightConstraint::live_row_max`] over the
/// lane-padded bit-row) only when a deletion kills its current argmax.
/// This is the mutable working set of the soft-AC-3 propagator
/// ([`crate::solver::SoftAc3`]).
#[derive(Debug, Clone)]
pub struct LiveRowMax {
    /// Flat per-(constraint, side, value) maxima; each constraint
    /// contributes one block for its first endpoint's values followed by
    /// one for its second's.
    max: Vec<f64>,
    /// Partner value attaining each `max` entry (`u32::MAX` when none —
    /// the entry is `NEG_INFINITY`, or reached it without a live partner).
    arg: Vec<u32>,
    /// `offs[2 * ci]` / `offs[2 * ci + 1]` = base slot of constraint
    /// `ci`'s first/second-endpoint block; `offs[2 * count]` = total.
    offs: Vec<u32>,
    /// Per-constraint max weight over live allowed pairs.
    cmax: Vec<f64>,
}

impl LiveRowMax {
    /// Scans every constraint once against `live` (the root build; search
    /// then maintains the entries incrementally).
    pub fn build(weights: &WeightKernel, kernel: &BitKernel, live: &BitDomains) -> Self {
        let count = kernel.constraint_count();
        let mut offs = Vec::with_capacity(2 * count + 1);
        let mut total = 0u32;
        for ci in 0..count {
            let bit = kernel.constraint(ci);
            offs.push(total);
            total += kernel.domain_size(bit.first()) as u32;
            offs.push(total);
            total += kernel.domain_size(bit.second()) as u32;
        }
        offs.push(total);
        let mut out = LiveRowMax {
            max: vec![f64::NEG_INFINITY; total as usize],
            arg: vec![u32::MAX; total as usize],
            offs,
            cmax: vec![f64::NEG_INFINITY; count],
        };
        for ci in 0..count {
            let bit = kernel.constraint(ci);
            let weight = weights.constraint(ci);
            for var_is_first in [true, false] {
                let (var, partner) = if var_is_first {
                    (bit.first(), bit.second())
                } else {
                    (bit.second(), bit.first())
                };
                for value in 0..kernel.domain_size(var) {
                    let (max, arg) =
                        weight.live_row_max(bit, var_is_first, value, live.words(partner));
                    let slot = out.slot(ci, var_is_first, value);
                    out.max[slot] = max;
                    out.arg[slot] = arg;
                }
            }
            out.cmax[ci] = out.recompute_cmax(ci, kernel, live);
        }
        out
    }

    /// Flat slot of the (constraint, side, value) entry — stable across
    /// mutations, so undo journals can address entries by slot.
    #[inline]
    pub fn slot(&self, ci: usize, var_is_first: bool, value: usize) -> usize {
        self.offs[2 * ci + usize::from(!var_is_first)] as usize + value
    }

    /// The (max, argmax) entry for `value` of the selected endpoint.
    #[inline]
    pub fn get(&self, ci: usize, var_is_first: bool, value: usize) -> (f64, u32) {
        self.get_slot(self.slot(ci, var_is_first, value))
    }

    /// The (max, argmax) entry at a flat slot.
    #[inline]
    pub fn get_slot(&self, slot: usize) -> (f64, u32) {
        (self.max[slot], self.arg[slot])
    }

    /// Overwrites the entry at `slot`, returning the previous (max,
    /// argmax) for the undo journal.
    #[inline]
    pub fn set_slot(&mut self, slot: usize, max: f64, arg: u32) -> (f64, u32) {
        let old = (self.max[slot], self.arg[slot]);
        self.max[slot] = max;
        self.arg[slot] = arg;
        old
    }

    /// The constraint's max weight over live allowed pairs.
    #[inline]
    pub fn cmax(&self, ci: usize) -> f64 {
        self.cmax[ci]
    }

    /// Overwrites a constraint's live-pair max, returning the previous
    /// value for the undo journal.
    #[inline]
    pub fn set_cmax(&mut self, ci: usize, value: f64) -> f64 {
        std::mem::replace(&mut self.cmax[ci], value)
    }

    /// Recomputes a constraint's live-pair max from its first-endpoint row
    /// maxima (a handful of reads; domains are small).
    pub fn recompute_cmax(&self, ci: usize, kernel: &BitKernel, live: &BitDomains) -> f64 {
        let bit = kernel.constraint(ci);
        let base = self.offs[2 * ci] as usize;
        let mut best = f64::NEG_INFINITY;
        live.for_each_live(bit.first(), |a| {
            let v = self.max[base + a];
            if v > best {
                best = v;
            }
        });
        best
    }
}

/// Word-packed live domains: one bit per (variable, value-index), the
/// working set every kernel-based solver prunes and restores.
#[derive(Debug, Clone)]
pub struct BitDomains {
    shape: Arc<DomainShape>,
    words: Vec<u64>,
}

impl BitDomains {
    /// The live-value words of `var`.
    pub fn words(&self, var: VarId) -> &[u64] {
        &self.words[self.shape.word_range(var.index())]
    }

    /// Number of live values of `var`.
    pub fn count(&self, var: VarId) -> usize {
        simd::popcount(self.words(var)) as usize
    }

    /// Whether `var` has no live value left (a wipeout).
    pub fn is_empty(&self, var: VarId) -> bool {
        !simd::any_set(self.words(var))
    }

    /// Whether value `index` of `var` is live.
    pub fn contains(&self, var: VarId, index: usize) -> bool {
        let words = self.words(var);
        index < self.shape.sizes[var.index()]
            && words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1
    }

    /// Removes value `index` of `var`; returns whether it was live.
    pub fn remove(&mut self, var: VarId, index: usize) -> bool {
        let range = self.shape.word_range(var.index());
        let word = &mut self.words[range][index / WORD_BITS];
        let bit = 1u64 << (index % WORD_BITS);
        let was = *word & bit != 0;
        *word &= !bit;
        was
    }

    /// The live values of `var` in ascending index order.
    pub fn live_values(&self, var: VarId) -> Vec<usize> {
        set_bits(self.words(var))
    }

    /// Calls `f` for every live value of `var` in ascending index order.
    pub fn for_each_live(&self, var: VarId, f: impl FnMut(usize)) {
        for_each_set_bit(self.words(var), f);
    }

    /// Copies out the live-word snapshot of `var` (for save/restore around
    /// forward checking).
    pub fn save(&self, var: VarId) -> Vec<u64> {
        self.words(var).to_vec()
    }

    /// Restores a snapshot taken by [`BitDomains::save`].
    ///
    /// # Panics
    ///
    /// Panics when the snapshot width does not match the variable.
    pub fn restore(&mut self, var: VarId, saved: &[u64]) {
        let range = self.shape.word_range(var.index());
        self.words[range].copy_from_slice(saved);
    }

    /// How many live values of `var` the row `row` would remove
    /// (`live & !row`), without modifying anything.
    pub fn would_remove(&self, var: VarId, row: &[u64]) -> usize {
        simd::andnot_popcount(self.words(var), row) as usize
    }

    /// Intersects the live values of `var` with `row` (`live &= row`);
    /// returns how many values were removed.
    pub fn intersect(&mut self, var: VarId, row: &[u64]) -> usize {
        let range = self.shape.word_range(var.index());
        simd::and_assign_count(&mut self.words[range], row) as usize
    }

    /// Fused forward-check step: when `row` would prune `var`, snapshots
    /// the live words and intersects, touching the span once.  Returns
    /// `None` — and writes nothing — when the row removes no live value,
    /// so the no-op case (the common one) allocates nothing.
    pub fn intersect_with_save(&mut self, var: VarId, row: &[u64]) -> Option<(Vec<u64>, usize)> {
        let range = self.shape.word_range(var.index());
        let words = &mut self.words[range];
        if !simd::andnot_any(words, row) {
            return None;
        }
        let saved = words.to_vec();
        let removed = simd::and_assign_count(words, row) as usize;
        Some((saved, removed))
    }

    /// AC-3's allocation-free revise: prunes the live values of `x` that
    /// lost all support among the live values of `y` under `constraint`
    /// (see [`BitConstraint::revise_live`] for the block-major walk).
    /// Returns `(removed, bytes_touched)`.
    pub fn revise(
        &mut self,
        x: VarId,
        y: VarId,
        constraint: &BitConstraint,
        x_is_first: bool,
    ) -> (u64, u64) {
        let xr = self.shape.word_range(x.index());
        let yr = self.shape.word_range(y.index());
        debug_assert_ne!(xr.start, yr.start, "constraint endpoints are distinct");
        let (x_words, y_words) = if xr.start < yr.start {
            let (head, tail) = self.words.split_at_mut(yr.start);
            (&mut head[xr], &tail[..yr.end - yr.start])
        } else {
            let (head, tail) = self.words.split_at_mut(xr.start);
            (&mut tail[..xr.end - xr.start], &head[yr])
        };
        constraint.revise_live(x_is_first, x_words, y_words)
    }

    /// Whether `row` has at least one bit in common with the live values of
    /// `var` — the bitset form of "does this value still have support?".
    pub fn intersects(&self, var: VarId, row: &[u64]) -> bool {
        simd::and_any(self.words(var), row)
    }

    /// Calls `f` for every live value of `var` that is also set in `row`,
    /// in ascending index order.
    pub fn for_each_common(&self, var: VarId, row: &[u64], mut f: impl FnMut(usize)) {
        for (wi, (&w, &r)) in self.words(var).iter().zip(row).enumerate() {
            let mut common = w & r;
            while common != 0 {
                let bit = common.trailing_zeros() as usize;
                f(wi * WORD_BITS + bit);
                common &= common - 1;
            }
        }
    }

    /// Popcount of `live(var) & row` — the number of live supports.
    pub fn intersection_count(&self, var: VarId, row: &[u64]) -> usize {
        simd::and_popcount(self.words(var), row) as usize
    }

    /// Restricts `var` to the given value indices (everything else is
    /// removed; indices outside the current live set stay dead).
    pub fn restrict_to(&mut self, var: VarId, keep: &[usize]) {
        let range = self.shape.word_range(var.index());
        let words = &mut self.words[range];
        let mut mask = vec![0u64; words.len()];
        for &index in keep {
            mask[index / WORD_BITS] |= 1 << (index % WORD_BITS);
        }
        for (w, m) in words.iter_mut().zip(mask) {
            *w &= m;
        }
    }
}

/// One masked variable of a [`DomainMask`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct MaskEntry {
    var: usize,
    /// Live-value words (`padded_words(domain_size)` of them, matching the
    /// kernel's lane-aligned spans).
    words: Box<[u64]>,
    /// Popcount of `words`, cached.
    live: usize,
}

/// A sparse live-domain overlay: the entire state of a mask-based
/// restricted view.
///
/// Only restricted variables have entries (a variable without one is fully
/// live), so a single-variable domain shard is one entry of a few words —
/// independent of how many pair entries the network's constraints hold.
/// Value indices are *original* domain indices: a mask never remaps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainMask {
    /// Sorted by variable index.
    entries: Vec<MaskEntry>,
}

impl DomainMask {
    /// A mask restricting nothing.
    pub fn new() -> Self {
        DomainMask::default()
    }

    /// Whether no variable is restricted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The variables this mask restricts, in ascending order.
    pub fn masked_variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.entries.iter().map(|e| VarId::new(e.var))
    }

    fn entry(&self, var: usize) -> Option<&MaskEntry> {
        self.entries
            .binary_search_by_key(&var, |e| e.var)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Intersects the mask of `var` (domain size `domain_size`) with the
    /// set of `keep` indices.
    ///
    /// # Errors
    ///
    /// Returns the offending index when `keep` mentions an index outside
    /// the domain or mentions the same index twice.
    pub fn restrict(
        &mut self,
        var: VarId,
        domain_size: usize,
        keep: &[usize],
    ) -> Result<(), usize> {
        let width = padded_words(domain_size);
        let mut words = vec![0u64; width].into_boxed_slice();
        for &index in keep {
            if index >= domain_size {
                return Err(index);
            }
            let bit = 1u64 << (index % WORD_BITS);
            if words[index / WORD_BITS] & bit != 0 {
                return Err(index);
            }
            words[index / WORD_BITS] |= bit;
        }
        match self.entries.binary_search_by_key(&var.index(), |e| e.var) {
            Ok(i) => {
                let entry = &mut self.entries[i];
                for (w, &k) in entry.words.iter_mut().zip(words.iter()) {
                    *w &= k;
                }
                entry.live = entry.words.iter().map(|w| w.count_ones() as usize).sum();
            }
            Err(i) => {
                let live = words.iter().map(|w| w.count_ones() as usize).sum();
                self.entries.insert(
                    i,
                    MaskEntry {
                        var: var.index(),
                        words,
                        live,
                    },
                );
            }
        }
        Ok(())
    }

    /// Number of live values of `var`, given its full domain size.
    pub fn live_count(&self, var: VarId, domain_size: usize) -> usize {
        self.entry(var.index()).map_or(domain_size, |e| e.live)
    }

    /// Whether `var` carries a mask entry (i.e. its domain was restricted;
    /// a variable without an entry is fully live).
    pub fn is_masked(&self, var: VarId) -> bool {
        self.entry(var.index()).is_some()
    }

    /// Whether value `index` of `var` is live under this mask.
    pub fn is_live(&self, var: VarId, index: usize) -> bool {
        match self.entry(var.index()) {
            Some(e) => e.words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1,
            None => true,
        }
    }

    /// The live values of `var` in ascending index order, given its full
    /// domain size.
    pub fn live_values(&self, var: VarId, domain_size: usize) -> Vec<usize> {
        match self.entry(var.index()) {
            Some(e) => set_bits(&e.words),
            None => (0..domain_size).collect(),
        }
    }

    /// Intersects this mask into a live-domain working set.
    pub fn apply(&self, domains: &mut BitDomains) {
        for entry in &self.entries {
            domains.intersect(VarId::new(entry.var), &entry.words);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn constraint(pairs: &[(usize, usize)]) -> BinaryConstraint {
        BinaryConstraint::new(
            VarId::new(0),
            VarId::new(1),
            pairs.iter().copied().collect::<HashSet<_>>(),
        )
    }

    fn kernel_2x(sizes: (usize, usize), pairs: &[(usize, usize)]) -> BitKernel {
        let c = Arc::new(constraint(pairs));
        BitKernel::build(
            vec![sizes.0, sizes.1],
            std::slice::from_ref(&c),
            &[vec![0], vec![0]],
        )
    }

    #[test]
    fn bit_constraint_matches_pairs_in_both_orientations() {
        let kernel = kernel_2x((3, 2), &[(0, 1), (1, 0), (2, 1)]);
        let c = kernel.constraint(0);
        assert!(c.allows(0, 1));
        assert!(!c.allows(0, 0));
        assert!(c.allows(2, 1));
        assert!(kernel.allows(0, VarId::new(0), 1, 0));
        assert!(kernel.allows(0, VarId::new(1), 0, 1));
        assert!(!kernel.allows(0, VarId::new(1), 1, 1));
        // Rows agree with the pair list.
        assert_eq!(set_bits(c.row(true, 0)), vec![1]);
        assert_eq!(set_bits(c.row(false, 1)), vec![0, 2]);
        // Full-domain support counts.
        assert_eq!(c.full_support(true, 0), 1);
        assert_eq!(c.full_support(false, 1), 2);
        assert_eq!(c.full_support(false, 0), 1);
    }

    #[test]
    fn full_domains_round_trip_and_prune() {
        let kernel = kernel_2x((70, 3), &[(0, 0)]);
        let mut live = kernel.full_domains();
        let a = VarId::new(0);
        assert_eq!(live.count(a), 70);
        assert!(live.contains(a, 69));
        assert!(!live.contains(a, 70));
        assert!(live.remove(a, 69));
        assert!(!live.remove(a, 69));
        assert_eq!(live.count(a), 69);
        let saved = live.save(a);
        live.restrict_to(a, &[1, 5, 64]);
        assert_eq!(live.live_values(a), vec![1, 5, 64]);
        live.restore(a, &saved);
        assert_eq!(live.count(a), 69);
    }

    #[test]
    fn intersect_counts_removals() {
        let kernel = kernel_2x((5, 5), &[(0, 0), (1, 1), (4, 4)]);
        let mut live = kernel.full_domains();
        let b = VarId::new(1);
        // Row of first=0 supports only second=0.
        let row: Vec<u64> = kernel.constraint(0).row(true, 0).to_vec();
        assert_eq!(live.would_remove(b, &row), 4);
        assert!(live.intersects(b, &row));
        assert_eq!(live.intersection_count(b, &row), 1);
        assert_eq!(live.intersect(b, &row), 4);
        assert_eq!(live.live_values(b), vec![0]);
        assert!(!live.is_empty(b));
        let empty_row = vec![0u64; row.len()];
        live.intersect(b, &empty_row);
        assert!(live.is_empty(b));
    }

    #[test]
    fn domain_mask_restricts_and_intersects() {
        let mut mask = DomainMask::new();
        assert!(mask.is_empty());
        let v = VarId::new(0);
        mask.restrict(v, 5, &[0, 3, 4]).unwrap();
        assert_eq!(mask.live_count(v, 5), 3);
        assert!(mask.is_live(v, 3));
        assert!(!mask.is_live(v, 1));
        // A second restriction intersects.
        mask.restrict(v, 5, &[3, 1]).unwrap();
        assert_eq!(mask.live_values(v, 5), vec![3]);
        // Unmasked variables are fully live.
        assert_eq!(mask.live_values(VarId::new(1), 2), vec![0, 1]);
        assert_eq!(mask.masked_variables().collect::<Vec<_>>(), vec![v]);
        // Errors: out of range and duplicates.
        assert_eq!(mask.restrict(v, 5, &[9]), Err(9));
        assert_eq!(mask.restrict(v, 5, &[2, 2]), Err(2));
    }

    #[test]
    fn mask_applies_to_domains() {
        let kernel = kernel_2x((4, 3), &[(0, 0)]);
        let mut mask = DomainMask::new();
        mask.restrict(VarId::new(0), 4, &[1, 2]).unwrap();
        let live = kernel.masked_domains(Some(&mask));
        assert_eq!(live.live_values(VarId::new(0)), vec![1, 2]);
        assert_eq!(live.count(VarId::new(1)), 3);
        let unmasked = kernel.masked_domains(None);
        assert_eq!(unmasked.count(VarId::new(0)), 4);
    }
}
