//! Partial and complete variable assignments.

use crate::network::{ConstraintNetwork, VarId};
use crate::Value;
use std::fmt;

/// A (possibly partial) instantiation: for each variable, the index of the
/// selected domain value, if any.
///
/// # Examples
///
/// ```
/// use mlo_csp::{Assignment, VarId};
/// let mut a = Assignment::new(3);
/// assert!(a.is_empty());
/// a.assign(VarId::new(1), 2);
/// assert_eq!(a.get(VarId::new(1)), Some(2));
/// assert_eq!(a.assigned_count(), 1);
/// a.unassign(VarId::new(1));
/// assert!(a.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<Option<usize>>,
}

impl Assignment {
    /// Creates an empty assignment over `variable_count` variables.
    pub fn new(variable_count: usize) -> Self {
        Assignment {
            values: vec![None; variable_count],
        }
    }

    /// Number of variables (assigned or not).
    pub fn variable_count(&self) -> usize {
        self.values.len()
    }

    /// Number of assigned variables.
    pub fn assigned_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Whether no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.assigned_count() == 0
    }

    /// Whether every variable is assigned.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(Option::is_some)
    }

    /// The value index assigned to `var`, if any.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn get(&self, var: VarId) -> Option<usize> {
        self.values[var.index()]
    }

    /// Whether `var` is assigned.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn is_assigned(&self, var: VarId) -> bool {
        self.values[var.index()].is_some()
    }

    /// Assigns `value` (a domain index) to `var`.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn assign(&mut self, var: VarId, value: usize) {
        self.values[var.index()] = Some(value);
    }

    /// Removes the assignment of `var`.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn unassign(&mut self, var: VarId) {
        self.values[var.index()] = None;
    }

    /// The unassigned variables, in id order.
    pub fn unassigned(&self) -> Vec<VarId> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                if v.is_none() {
                    Some(VarId::new(i))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The assigned variables, in id order.
    pub fn assigned(&self) -> Vec<VarId> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                if v.is_some() {
                    Some(VarId::new(i))
                } else {
                    None
                }
            })
            .collect()
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (i, v) in self.values.iter().enumerate() {
            if let Some(v) = v {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "x{i}={v}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

/// A complete, materialized solution: every variable mapped to its selected
/// value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution<V> {
    names: Vec<String>,
    values: Vec<V>,
    indices: Vec<usize>,
}

impl<V: Value> Solution<V> {
    /// Builds a solution from a complete assignment over a network.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is incomplete.
    pub fn from_assignment(network: &ConstraintNetwork<V>, assignment: &Assignment) -> Self {
        assert!(
            assignment.is_complete(),
            "solution requires a complete assignment"
        );
        let values = network.materialize(assignment);
        let names = network
            .variables()
            .map(|v| network.name(v).to_string())
            .collect();
        let indices = network
            .variables()
            .map(|v| assignment.get(v).expect("complete"))
            .collect();
        Solution {
            names,
            values,
            indices,
        }
    }

    /// The selected value of a variable.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn value(&self, var: VarId) -> &V {
        &self.values[var.index()]
    }

    /// The selected domain index of a variable.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn value_index(&self, var: VarId) -> usize {
        self.indices[var.index()]
    }

    /// The variable names, in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The selected values, in id order.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Iterates over `(name, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &V)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter())
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the solution covers no variables (an empty network).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<V: Value + fmt::Display> fmt::Display for Solution<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_lifecycle() {
        let mut a = Assignment::new(3);
        assert_eq!(a.variable_count(), 3);
        assert!(!a.is_complete());
        assert_eq!(a.unassigned().len(), 3);
        a.assign(VarId::new(0), 1);
        a.assign(VarId::new(2), 0);
        assert_eq!(a.assigned(), vec![VarId::new(0), VarId::new(2)]);
        assert_eq!(a.unassigned(), vec![VarId::new(1)]);
        assert!(a.is_assigned(VarId::new(0)));
        assert!(!a.is_assigned(VarId::new(1)));
        assert_eq!(a.to_string(), "{x0=1, x2=0}");
        a.assign(VarId::new(1), 2);
        assert!(a.is_complete());
        a.unassign(VarId::new(1));
        assert!(!a.is_complete());
    }

    #[test]
    fn solution_materialization() {
        let mut net: ConstraintNetwork<&str> = ConstraintNetwork::new();
        let a = net.add_variable("A", vec!["row", "col"]);
        let b = net.add_variable("B", vec!["diag"]);
        let mut asg = Assignment::new(2);
        asg.assign(a, 1);
        asg.assign(b, 0);
        let sol = Solution::from_assignment(&net, &asg);
        assert_eq!(sol.value(a), &"col");
        assert_eq!(sol.value_index(a), 1);
        assert_eq!(sol.value(b), &"diag");
        assert_eq!(sol.names(), &["A".to_string(), "B".to_string()]);
        assert_eq!(sol.values(), &["col", "diag"]);
        assert_eq!(sol.len(), 2);
        assert!(!sol.is_empty());
        assert_eq!(sol.to_string(), "A=col, B=diag");
    }

    #[test]
    #[should_panic(expected = "complete assignment")]
    fn incomplete_solution_panics() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        net.add_variable("A", vec![1]);
        let asg = Assignment::new(1);
        let _ = Solution::from_assignment(&net, &asg);
    }
}
