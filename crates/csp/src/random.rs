//! Reproducible random constraint networks.
//!
//! Used by the property-based tests (every solver must agree with a brute
//! force oracle) and by the scaling benchmarks that go beyond the paper's
//! five fixed benchmarks.

use crate::network::{ConstraintNetwork, VarId};
use crate::weighted::WeightedNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Parameters of the classic random binary-CSP model `<n, d, p1, p2>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomNetworkSpec {
    /// Number of variables.
    pub variables: usize,
    /// Domain size of every variable.
    pub domain_size: usize,
    /// Constraint density: probability that a pair of variables is
    /// constrained (0.0–1.0).
    pub density: f64,
    /// Constraint tightness: fraction of value pairs *forbidden* by each
    /// constraint (0.0 = everything allowed, 1.0 = nothing allowed).
    pub tightness: f64,
    /// RNG seed; equal specs with equal seeds build identical networks.
    pub seed: u64,
}

impl Default for RandomNetworkSpec {
    fn default() -> Self {
        RandomNetworkSpec {
            variables: 10,
            domain_size: 4,
            density: 0.4,
            tightness: 0.3,
            seed: 1,
        }
    }
}

impl RandomNetworkSpec {
    /// Generates the network described by this specification.
    ///
    /// Values are plain `usize` indices (0..domain_size); the layout crate
    /// has its own, semantically meaningful generator.
    ///
    /// # Panics
    ///
    /// Panics if `density` or `tightness` is outside `[0, 1]`.
    pub fn generate(&self) -> ConstraintNetwork<usize> {
        assert!(
            (0.0..=1.0).contains(&self.density),
            "density must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.tightness),
            "tightness must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut net = ConstraintNetwork::new();
        let vars: Vec<VarId> = (0..self.variables)
            .map(|i| net.add_variable(format!("v{i}"), (0..self.domain_size).collect()))
            .collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                if rng.gen::<f64>() >= self.density {
                    continue;
                }
                let mut allowed = HashSet::new();
                for a in 0..self.domain_size {
                    for b in 0..self.domain_size {
                        if rng.gen::<f64>() >= self.tightness {
                            allowed.insert((a, b));
                        }
                    }
                }
                net.add_constraint_by_index(vars[i], vars[j], allowed)
                    .expect("indices are in range by construction");
            }
        }
        net
    }
}

/// Generates a random network that is *guaranteed satisfiable*: a hidden
/// solution is planted and every constraint is forced to allow it.
///
/// This mirrors how layout networks behave in practice (the original layout
/// of the program is always one consistent assignment) and gives benchmarks
/// a non-trivial but solvable search.
pub fn satisfiable_network(spec: &RandomNetworkSpec) -> (ConstraintNetwork<usize>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5EED);
    let planted: Vec<usize> = (0..spec.variables)
        .map(|_| rng.gen_range(0..spec.domain_size.max(1)))
        .collect();
    let mut net = ConstraintNetwork::new();
    let vars: Vec<VarId> = (0..spec.variables)
        .map(|i| net.add_variable(format!("v{i}"), (0..spec.domain_size).collect()))
        .collect();
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            if rng.gen::<f64>() >= spec.density {
                continue;
            }
            let mut allowed = HashSet::new();
            allowed.insert((planted[i], planted[j]));
            for a in 0..spec.domain_size {
                for b in 0..spec.domain_size {
                    if rng.gen::<f64>() >= spec.tightness {
                        allowed.insert((a, b));
                    }
                }
            }
            net.add_constraint_by_index(vars[i], vars[j], allowed)
                .expect("indices are in range by construction");
        }
    }
    (net, planted)
}

/// Generates a planted-satisfiable **weighted** network: the hard network
/// comes from [`satisfiable_network`], every planted pair weighs
/// `planted_bonus`, and every other allowed pair gets a small random
/// integer weight in `0..noise_levels`.
///
/// With `planted_bonus` well above `noise_levels` the planted assignment is
/// the unique optimum, which makes these instances ideal for exercising
/// (and perf-gating) branch-and-bound portfolios: integer weights keep
/// every weight sum exact, so results are bit-comparable across thread
/// counts.
pub fn planted_weighted_network(
    spec: &RandomNetworkSpec,
    planted_bonus: f64,
    noise_levels: u32,
) -> (WeightedNetwork<usize>, Vec<usize>) {
    let (net, planted) = satisfiable_network(spec);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x0DD5_EED5);
    let mut weighted = WeightedNetwork::new(net, 0.0);
    let network = weighted.network().clone();
    for c in network.constraints() {
        // `allowed_pairs` is a HashSet whose iteration order varies per
        // process; noise draws are consumed in pair order, so the pairs
        // must be walked in a canonical order or the "fixed seed" would
        // still yield a different instance on every run.
        let mut pairs: Vec<(usize, usize)> = c.allowed_pairs().iter().copied().collect();
        pairs.sort_unstable();
        for (a, b) in pairs {
            let weight = if planted[c.first().index()] == a && planted[c.second().index()] == b {
                planted_bonus
            } else {
                rng.gen_range(0..noise_levels.max(1)) as f64
            };
            let va = *network.domain(c.first()).value(a);
            let vb = *network.domain(c.second()).value(b);
            weighted
                .set_weight(c.first(), c.second(), &va, &vb, weight)
                .expect("pairs come from the network itself");
        }
    }
    (weighted, planted)
}

/// Generates the pigeonhole network `PHP(holes + 1, holes)`: `holes + 1`
/// variables (pigeons), each ranging over `holes` values, pairwise
/// constrained to differ.
///
/// By the pigeonhole principle the network is **provably unsatisfiable**,
/// and any backtracking refutation must exhaust a factorially large tree —
/// the canonical hard UNSAT-proof workload.  Unlike random instances the
/// tree has no lucky early exits, which makes these instances ideal for
/// benchmarking parallel proof sharding: the work partitions evenly and the
/// node total is schedule-independent.
///
/// `holes == 0` yields a single variable with an empty domain (still
/// unsatisfiable, trivially).
pub fn pigeonhole_network(holes: usize) -> ConstraintNetwork<usize> {
    let mut net = ConstraintNetwork::new();
    let vars: Vec<VarId> = (0..=holes)
        .map(|i| net.add_variable(format!("pigeon{i}"), (0..holes).collect()))
        .collect();
    let mut not_equal = HashSet::new();
    for a in 0..holes {
        for b in 0..holes {
            if a != b {
                not_equal.insert((a, b));
            }
        }
    }
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            net.add_constraint_by_index(vars[i], vars[j], not_equal.clone())
                .expect("indices are in range by construction");
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::solver::{Scheme, SearchEngine};

    #[test]
    fn pigeonhole_is_unsatisfiable() {
        for holes in [2usize, 3, 4] {
            let net = pigeonhole_network(holes);
            assert_eq!(net.variable_count(), holes + 1);
            assert_eq!(net.constraint_count(), (holes + 1) * holes / 2);
            let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
            assert!(
                result.proves_unsatisfiable(),
                "PHP({}) must be UNSAT",
                holes
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let spec = RandomNetworkSpec::default();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.variable_count(), b.variable_count());
        assert_eq!(a.constraint_count(), b.constraint_count());
        let different_seed = RandomNetworkSpec { seed: 2, ..spec };
        // Very likely different; at minimum it must still be well formed.
        let c = different_seed.generate();
        assert_eq!(c.variable_count(), spec.variables);
    }

    #[test]
    fn planted_weights_are_reproducible_pair_by_pair() {
        // Noise draws must not depend on HashSet iteration order (which
        // varies between generator calls, let alone processes): the same
        // spec must weigh every allowed pair identically every time, or
        // "fixed seed" benchmark instances silently change per run.
        let spec = RandomNetworkSpec {
            variables: 10,
            domain_size: 3,
            density: 0.5,
            tightness: 0.2,
            seed: 77,
        };
        let (a, planted_a) = planted_weighted_network(&spec, 25.0, 9);
        let (b, planted_b) = planted_weighted_network(&spec, 25.0, 9);
        assert_eq!(planted_a, planted_b);
        for (ci, c) in a.network().constraints().iter().enumerate() {
            for &pair in c.allowed_pairs() {
                assert_eq!(
                    a.weight_of(ci, pair).to_bits(),
                    b.weight_of(ci, pair).to_bits(),
                    "constraint {ci} pair {pair:?} drew different noise"
                );
            }
        }
    }

    #[test]
    fn spec_controls_shape() {
        let spec = RandomNetworkSpec {
            variables: 6,
            domain_size: 3,
            density: 1.0,
            tightness: 0.0,
            seed: 9,
        };
        let net = spec.generate();
        assert_eq!(net.variable_count(), 6);
        // Full density: every pair is constrained.
        assert_eq!(net.constraint_count(), 6 * 5 / 2);
        // Zero tightness: every pair of values allowed.
        for c in net.constraints() {
            assert_eq!(c.pair_count(), 9);
        }
        assert_eq!(net.total_domain_size(), 18);
    }

    #[test]
    fn planted_solution_satisfies_network() {
        let spec = RandomNetworkSpec {
            variables: 12,
            domain_size: 4,
            density: 0.6,
            tightness: 0.5,
            seed: 42,
        };
        let (net, planted) = satisfiable_network(&spec);
        let mut asg = Assignment::new(net.variable_count());
        for (i, &v) in planted.iter().enumerate() {
            asg.assign(VarId::new(i), v);
        }
        assert_eq!(net.is_solution(&asg), Ok(true));
        // And the solver finds some solution.
        let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
        assert!(result.is_satisfiable());
    }

    #[test]
    fn planted_weighted_network_has_the_planted_optimum() {
        let spec = RandomNetworkSpec {
            variables: 10,
            domain_size: 3,
            density: 0.5,
            tightness: 0.2,
            seed: 77,
        };
        let (weighted, planted) = planted_weighted_network(&spec, 50.0, 10);
        let mut asg = Assignment::new(weighted.network().variable_count());
        for (i, &v) in planted.iter().enumerate() {
            asg.assign(VarId::new(i), v);
        }
        assert_eq!(weighted.network().is_solution(&asg), Ok(true));
        let result = crate::weighted::BranchAndBound::new().optimize(&weighted);
        let solution = result.solution.expect("planted instances are satisfiable");
        let planted_weight = weighted.assignment_weight(&asg);
        assert!(
            result.best_weight >= planted_weight,
            "optimum {} below the planted weight {}",
            result.best_weight,
            planted_weight
        );
        // The bonus dominates the noise, so the optimizer lands on the
        // planted assignment.
        let values: Vec<usize> = solution.values().to_vec();
        assert_eq!(values, planted);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn invalid_density_panics() {
        let spec = RandomNetworkSpec {
            density: 1.5,
            ..RandomNetworkSpec::default()
        };
        let _ = spec.generate();
    }
}
