//! Scenario tests for the cache hierarchy: classic locality situations whose
//! qualitative outcome is known in advance.

use mlo_cachesim::{Cache, CacheConfig, MachineConfig, MemoryHierarchy, Simulator, TraceOptions};
use mlo_ir::{AccessBuilder, ProgramBuilder};
use mlo_layout::{Layout, LayoutAssignment};

#[test]
fn streaming_read_misses_once_per_line() {
    // 4-byte elements, 32-byte lines: exactly one miss every 8 elements.
    let mut cache = Cache::new(CacheConfig::new(8 * 1024, 2, 32).unwrap());
    for i in 0..1024u64 {
        cache.access(i * 4);
    }
    assert_eq!(cache.stats().misses, 1024 / 8);
    assert_eq!(cache.stats().hits, 1024 - 1024 / 8);
}

#[test]
fn large_stride_misses_every_access_until_wraparound() {
    let mut cache = Cache::new(CacheConfig::new(8 * 1024, 2, 32).unwrap());
    // Stride of exactly one line: every access touches a new line.
    for i in 0..256u64 {
        cache.access(i * 32);
    }
    assert_eq!(cache.stats().misses, 256);
}

#[test]
fn working_set_that_fits_in_l2_but_not_l1() {
    // 32 KB working set: four times the L1, half of the L2.
    let config = MachineConfig::date05();
    let mut hierarchy = MemoryHierarchy::new(config);
    let lines: u64 = 32 * 1024 / 64;
    // First sweep: cold misses everywhere.
    for i in 0..lines {
        hierarchy.access(i * 64);
    }
    let cold_l2_misses = hierarchy.l2_stats().misses;
    // Second sweep: L1 cannot hold it, L2 can.
    for i in 0..lines {
        hierarchy.access(i * 64);
    }
    assert_eq!(
        hierarchy.l2_stats().misses,
        cold_l2_misses,
        "the second sweep must be served entirely from L2"
    );
    assert!(hierarchy.l1_stats().miss_rate() > 0.4);
}

#[test]
fn row_major_versus_column_major_traversal_of_a_big_matrix() {
    // The textbook experiment the whole paper rests on: traversing a matrix
    // along the wrong dimension of a row-major layout produces roughly one
    // miss per access, along the right dimension one miss per line.  The
    // matrix must be large enough that one traversal column (n lines) does
    // not fit in the 256-line L1, otherwise cross-iteration temporal reuse
    // hides the layout mismatch.
    let n = 512;
    let mut builder = ProgramBuilder::new("traversal");
    let a = builder.array("A", vec![n, n], 4);
    builder.nest("walk", vec![("j", 0, n), ("i", 0, n)], |nest| {
        // A[i][j] with i innermost: column-order traversal.
        nest.read(
            a,
            AccessBuilder::new(2, 2)
                .row(0, [0, 1])
                .row(1, [1, 0])
                .build(),
        );
    });
    let program = builder.build();
    let simulator = Simulator::new(MachineConfig::date05())
        .trace_options(TraceOptions {
            max_trip_per_loop: 1024,
            array_alignment: 64,
        })
        .without_restructuring();

    let mut row_major = LayoutAssignment::new();
    row_major.set(a, Layout::row_major(2));
    let mut column_major = LayoutAssignment::new();
    column_major.set(a, Layout::column_major(2));

    let bad = simulator.simulate(&program, &row_major).unwrap();
    let good = simulator.simulate(&program, &column_major).unwrap();

    // Column-major: one miss per 8 elements. Row-major: each traversal
    // column touches 512 distinct lines, twice the L1, so nearly every
    // access misses.
    assert!(good.l1_data.miss_rate() < 0.2);
    assert!(bad.l1_data.miss_rate() > 0.8);
    assert!(bad.total_cycles > 3 * good.total_cycles);
}

#[test]
fn diagonal_layout_serves_wavefront_traversals() {
    // A wavefront kernel touching A[i+j][j] (the paper's Figure 2 access):
    // under the diagonal layout consecutive inner iterations are adjacent in
    // memory; under row-major they are a full row apart.  As above, the
    // inner trip count must exceed the L1's 256 lines so that the row-major
    // layout cannot hide behind cross-iteration temporal reuse.
    let n = 384;
    let mut builder = ProgramBuilder::new("wavefront");
    let a = builder.array("A", vec![2 * n, n], 4);
    builder.nest("sweep", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
        nest.read(
            a,
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [0, 1])
                .build(),
        );
    });
    let program = builder.build();
    let simulator = Simulator::new(MachineConfig::date05())
        .trace_options(TraceOptions {
            max_trip_per_loop: 512,
            array_alignment: 64,
        })
        .without_restructuring();

    let mut diagonal = LayoutAssignment::new();
    diagonal.set(a, Layout::diagonal());
    let mut row_major = LayoutAssignment::new();
    row_major.set(a, Layout::row_major(2));

    let good = simulator.simulate(&program, &diagonal).unwrap();
    let bad = simulator.simulate(&program, &row_major).unwrap();
    assert!(
        good.l1_data.misses * 2 < bad.l1_data.misses,
        "diagonal layout should cut misses well below row-major ({} vs {})",
        good.l1_data.misses,
        bad.l1_data.misses
    );
    assert!(good.total_cycles < bad.total_cycles);
}

#[test]
fn issue_width_bounds_compute_time() {
    // A compute-only nest: cycles are dominated by the 2-issue core model.
    let mut builder = ProgramBuilder::new("alu");
    builder.nest("spin", vec![("i", 0, 1000)], |nest| {
        nest.compute(10);
    });
    let program = builder.build();
    let report = Simulator::new(MachineConfig::date05())
        .simulate(&program, &LayoutAssignment::new())
        .unwrap();
    // 10 instructions at 2 per cycle = 5 cycles per iteration.
    assert_eq!(report.total_cycles, 1000 * 5);
}
