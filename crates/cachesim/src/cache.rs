//! A single set-associative cache with true-LRU replacement.

use crate::stats::CacheStats;
use crate::SimError;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u64,
    /// Line (block) size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Creates a configuration after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if any parameter is zero, the
    /// line size or set count is not a power of two, or the capacity is not
    /// divisible by `associativity × line_bytes`.
    pub fn new(size_bytes: u64, associativity: u64, line_bytes: u64) -> crate::Result<Self> {
        if size_bytes == 0 || associativity == 0 || line_bytes == 0 {
            return Err(SimError::InvalidCacheConfig(
                "size, associativity and line size must be non-zero".into(),
            ));
        }
        if !line_bytes.is_power_of_two() {
            return Err(SimError::InvalidCacheConfig(format!(
                "line size {line_bytes} is not a power of two"
            )));
        }
        if !size_bytes.is_multiple_of(associativity * line_bytes) {
            return Err(SimError::InvalidCacheConfig(format!(
                "capacity {size_bytes} is not divisible by associativity {associativity} x line {line_bytes}"
            )));
        }
        let sets = size_bytes / (associativity * line_bytes);
        if !sets.is_power_of_two() {
            return Err(SimError::InvalidCacheConfig(format!(
                "set count {sets} is not a power of two"
            )));
        }
        Ok(CacheConfig {
            size_bytes,
            associativity,
            line_bytes,
        })
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.associativity * self.line_bytes)
    }
}

/// Whether an access hit or missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

/// One set-associative LRU cache.
///
/// # Examples
///
/// ```
/// use mlo_cachesim::{Cache, CacheConfig, AccessOutcome};
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 32).unwrap());
/// assert_eq!(c.access(0), AccessOutcome::Miss);
/// assert_eq!(c.access(4), AccessOutcome::Hit);   // same 32-byte line
/// assert_eq!(c.access(32), AccessOutcome::Miss); // next line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// For each set, the resident line tags ordered most-recently-used
    /// first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.associativity as usize); config.sets() as usize];
        Cache {
            config,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses a byte address, updating LRU state and statistics.
    pub fn access(&mut self, address: u64) -> AccessOutcome {
        let line = address / self.config.line_bytes;
        let set_index = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        let set = &mut self.sets[set_index];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            self.stats.hits += 1;
            AccessOutcome::Hit
        } else {
            if set.len() as u64 == self.config.associativity {
                set.pop();
                self.stats.evictions += 1;
            }
            set.insert(0, tag);
            self.stats.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// Empties the cache (statistics are kept).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Resets the statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(8 * 1024, 2, 32).is_ok());
        assert!(CacheConfig::new(0, 2, 32).is_err());
        assert!(CacheConfig::new(1024, 0, 32).is_err());
        assert!(CacheConfig::new(1024, 2, 0).is_err());
        assert!(CacheConfig::new(1024, 2, 33).is_err());
        assert!(CacheConfig::new(96, 3, 32).is_ok());
        assert!(CacheConfig::new(1000, 2, 32).is_err());
        assert_eq!(CacheConfig::new(8 * 1024, 2, 32).unwrap().sets(), 128);
    }

    #[test]
    fn spatial_locality_hits_within_a_line() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 32).unwrap());
        assert_eq!(c.access(100), AccessOutcome::Miss);
        for offset in 96..128 {
            if offset != 100 {
                assert_eq!(c.access(offset), AccessOutcome::Hit, "offset {offset}");
            }
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 32);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Direct-mapped-like scenario: 2-way set; three conflicting lines.
        let cfg = CacheConfig::new(64, 2, 32).unwrap(); // 1 set, 2 ways
        let mut c = Cache::new(cfg);
        assert_eq!(c.access(0), AccessOutcome::Miss); // line A
        assert_eq!(c.access(32), AccessOutcome::Miss); // line B
        assert_eq!(c.access(0), AccessOutcome::Hit); // A is MRU now
        assert_eq!(c.access(64), AccessOutcome::Miss); // line C evicts B
        assert_eq!(c.access(0), AccessOutcome::Hit); // A still resident
        assert_eq!(c.access(32), AccessOutcome::Miss); // B was evicted
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn flush_and_reset() {
        let mut c = Cache::new(CacheConfig::new(64, 2, 32).unwrap());
        c.access(0);
        c.access(0);
        assert_eq!(c.stats().hits, 1);
        c.flush();
        assert_eq!(c.access(0), AccessOutcome::Miss);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn conflict_misses_depend_on_associativity() {
        // Two addresses mapping to the same set: a direct-mapped cache
        // thrashes, a 2-way cache does not.
        let direct = CacheConfig::new(1024, 1, 32).unwrap();
        let two_way = CacheConfig::new(1024, 2, 32).unwrap();
        let stride = 1024; // same set in both configurations
        let mut dm = Cache::new(direct);
        let mut sa = Cache::new(two_way);
        for _ in 0..10 {
            dm.access(0);
            dm.access(stride);
            sa.access(0);
            sa.access(stride);
        }
        assert!(dm.stats().misses > sa.stats().misses);
        assert_eq!(sa.stats().misses, 2);
    }

    proptest! {
        #[test]
        fn hits_plus_misses_equals_accesses(addrs in proptest::collection::vec(0u64..4096, 1..200)) {
            let mut c = Cache::new(CacheConfig::new(512, 2, 32).unwrap());
            for a in &addrs {
                c.access(*a);
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert_eq!(s.accesses, addrs.len() as u64);
        }

        #[test]
        fn bigger_cache_never_misses_more_on_repeated_scans(
            lines in 1u64..64,
        ) {
            // Scan a working set twice; a cache with more capacity (same
            // assoc/line) must not produce more misses.
            let addrs: Vec<u64> = (0..lines).flat_map(|l| vec![l * 32]).collect();
            let mut small = Cache::new(CacheConfig::new(256, 2, 32).unwrap());
            let mut large = Cache::new(CacheConfig::new(4096, 2, 32).unwrap());
            for _ in 0..2 {
                for &a in &addrs {
                    small.access(a);
                    large.access(a);
                }
            }
            prop_assert!(large.stats().misses <= small.stats().misses);
        }
    }
}
