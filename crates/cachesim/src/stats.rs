//! Hit/miss counters.

use std::fmt;

/// Access counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `1.0` for a level that saw no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate in `[0, 1]`; `0.0` for a level that saw no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Adds another counter set to this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} ({:.1}% miss)",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            accesses: 10,
            hits: 8,
            misses: 2,
            evictions: 1,
        };
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
        assert!((s.miss_rate() - 0.2).abs() < 1e-12);
        let empty = CacheStats::default();
        assert_eq!(empty.hit_rate(), 1.0);
        assert_eq!(empty.miss_rate(), 0.0);
    }

    #[test]
    fn absorb_and_display() {
        let mut a = CacheStats {
            accesses: 4,
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        let b = CacheStats {
            accesses: 6,
            hits: 2,
            misses: 4,
            evictions: 2,
        };
        a.absorb(&b);
        assert_eq!(a.accesses, 10);
        assert_eq!(a.misses, 5);
        assert_eq!(a.evictions, 2);
        assert!(a.to_string().contains("accesses=10"));
    }
}
