//! Machine configurations.

use crate::cache::CacheConfig;

/// The processor and memory-hierarchy parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// L1 data cache geometry.
    pub l1_data: CacheConfig,
    /// Unified L2 cache geometry.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    /// Instructions issued per cycle by the in-order core.
    pub issue_width: u64,
}

impl MachineConfig {
    /// The machine the paper models with SimpleScalar: a 2-issue embedded
    /// processor, 8 KB 2-way L1 data cache with 32-byte lines, a unified
    /// 64 KB 4-way L2 with 64-byte lines, and 1 / 6 / 70-cycle latencies.
    pub fn date05() -> Self {
        MachineConfig {
            l1_data: CacheConfig::new(8 * 1024, 2, 32).expect("valid L1 geometry"),
            l2: CacheConfig::new(64 * 1024, 4, 64).expect("valid L2 geometry"),
            l1_latency: 1,
            l2_latency: 6,
            memory_latency: 70,
            issue_width: 2,
        }
    }

    /// A deliberately tiny hierarchy useful in unit tests (misses are easy
    /// to provoke).
    pub fn tiny() -> Self {
        MachineConfig {
            l1_data: CacheConfig::new(256, 2, 32).expect("valid L1 geometry"),
            l2: CacheConfig::new(1024, 2, 64).expect("valid L2 geometry"),
            l1_latency: 1,
            l2_latency: 6,
            memory_latency: 70,
            issue_width: 2,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::date05()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date05_matches_the_paper() {
        let c = MachineConfig::date05();
        assert_eq!(c.l1_data.size_bytes, 8 * 1024);
        assert_eq!(c.l1_data.associativity, 2);
        assert_eq!(c.l1_data.line_bytes, 32);
        assert_eq!(c.l2.size_bytes, 64 * 1024);
        assert_eq!(c.l2.associativity, 4);
        assert_eq!(c.l2.line_bytes, 64);
        assert_eq!(c.l1_latency, 1);
        assert_eq!(c.l2_latency, 6);
        assert_eq!(c.memory_latency, 70);
        assert_eq!(c.issue_width, 2);
        assert_eq!(MachineConfig::default(), c);
    }

    #[test]
    fn tiny_is_smaller_than_date05() {
        let t = MachineConfig::tiny();
        assert!(t.l1_data.size_bytes < MachineConfig::date05().l1_data.size_bytes);
    }
}
