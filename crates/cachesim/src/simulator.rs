//! The end-to-end simulator: program + layouts → cycles.

use crate::config::MachineConfig;
use crate::hierarchy::MemoryHierarchy;
use crate::stats::CacheStats;
use crate::trace::{TraceGenerator, TraceOptions};
use crate::Result;
use mlo_ir::{LoopTransform, NestId, Program};
use mlo_layout::{quality, LayoutAssignment};
use std::collections::HashMap;
use std::fmt;

/// Per-nest and whole-program simulation results.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Total cycles of the whole program (sub-sampled nests are scaled back
    /// up to their true iteration counts).
    pub total_cycles: u64,
    /// Total simulated data accesses (before scaling).
    pub total_accesses: u64,
    /// L1 data-cache counters.
    pub l1_data: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Per-nest cycles after scaling, indexed by nest id order.
    pub nest_cycles: Vec<(NestId, u64)>,
    /// The loop restructuring used for every nest.
    pub nest_transforms: Vec<(NestId, String)>,
}

impl SimulationReport {
    /// Speedup of this report relative to a baseline (baseline cycles / own
    /// cycles); values above 1.0 mean this run is faster.
    pub fn speedup_over(&self, baseline: &SimulationReport) -> f64 {
        if self.total_cycles == 0 {
            return 1.0;
        }
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Percentage improvement over a baseline, as the paper reports
    /// (positive = faster than the baseline).
    pub fn improvement_over(&self, baseline: &SimulationReport) -> f64 {
        if baseline.total_cycles == 0 {
            return 0.0;
        }
        (baseline.total_cycles as f64 - self.total_cycles as f64) / baseline.total_cycles as f64
            * 100.0
    }
}

impl fmt::Display for SimulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles: {}", self.total_cycles)?;
        writeln!(f, "L1D: {}", self.l1_data)?;
        writeln!(f, "L2:  {}", self.l2)
    }
}

/// Replays a program's data accesses through the memory hierarchy under a
/// layout assignment.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
    trace_options: TraceOptions,
    /// Whether each nest may use its best legal loop restructuring for the
    /// given layouts (the compiler the paper assumes does exactly that).
    pub allow_restructuring: bool,
}

impl Simulator {
    /// Creates a simulator for a machine configuration.
    pub fn new(config: MachineConfig) -> Self {
        Simulator {
            config,
            trace_options: TraceOptions::default(),
            allow_restructuring: true,
        }
    }

    /// Overrides the trace-generation options.
    pub fn trace_options(mut self, options: TraceOptions) -> Self {
        self.trace_options = options;
        self
    }

    /// Disables per-nest loop restructuring (every nest runs in its original
    /// loop order).  Used for the "Original" baseline column of Table 3.
    pub fn without_restructuring(mut self) -> Self {
        self.allow_restructuring = false;
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Simulates the program under a layout assignment.
    ///
    /// # Errors
    ///
    /// Fails when an array has no layout or a layout cannot be linearized.
    pub fn simulate(
        &self,
        program: &Program,
        assignment: &LayoutAssignment,
    ) -> Result<SimulationReport> {
        let generator = TraceGenerator::new(self.trace_options);
        let plan = generator.plan_memory(program, assignment)?;
        let mut hierarchy = MemoryHierarchy::new(self.config);
        let mut total_cycles = 0u64;
        let mut total_accesses = 0u64;
        let mut nest_cycles = Vec::new();
        let mut nest_transforms = Vec::new();

        for nest in program.nests() {
            let transform = if self.allow_restructuring {
                quality::best_nest_score(nest, assignment).0
            } else {
                LoopTransform::identity(nest.depth())
            };
            let trace = generator.nest_trace(program, nest.id(), &transform, &plan);
            // Scale factor: the sub-sampled walker visits fewer iterations
            // than the real nest; cycles are scaled back up so that nests
            // keep their relative weight.
            let walker = mlo_ir::IterationSpace::transformed(nest, &transform)
                .subsampled(self.trace_options.max_trip_per_loop);
            let simulated_iterations = walker.len().max(1) as u64;
            let real_iterations = nest.iteration_count().max(1) as u64;
            let scale = real_iterations as f64 / simulated_iterations as f64;

            let mut nest_cycle_count = 0u64;
            // Issue-limited instruction cost per iteration: compute
            // instructions plus one instruction per reference, dual-issued.
            let per_iteration_instructions =
                nest.compute_per_iteration() as u64 + nest.references().len() as u64;
            let issue_cycles_per_iteration =
                per_iteration_instructions.div_ceil(self.config.issue_width.max(1));
            let refs_per_iteration = nest.references().len().max(1) as u64;
            let mut access_in_iteration = 0u64;
            for access in &trace {
                let (_, latency) = hierarchy.access(access.address);
                // The L1 hit latency is hidden by the pipeline; only the
                // stall beyond it costs extra cycles.
                nest_cycle_count += latency.saturating_sub(self.config.l1_latency);
                total_accesses += 1;
                access_in_iteration += 1;
                if access_in_iteration == refs_per_iteration {
                    nest_cycle_count += issue_cycles_per_iteration;
                    access_in_iteration = 0;
                }
            }
            if trace.is_empty() {
                // A nest with no references still burns its compute cycles.
                nest_cycle_count += issue_cycles_per_iteration * simulated_iterations;
            }
            let scaled = (nest_cycle_count as f64 * scale).round() as u64;
            total_cycles += scaled;
            nest_cycles.push((nest.id(), scaled));
            nest_transforms.push((nest.id(), transform.describe()));
        }

        Ok(SimulationReport {
            total_cycles,
            total_accesses,
            l1_data: *hierarchy.l1_stats(),
            l2: *hierarchy.l2_stats(),
            nest_cycles,
            nest_transforms,
        })
    }
}

/// Convenience: simulates the four Table 3 configurations of the paper for a
/// program — original layouts (row-major, no restructuring), the heuristic
/// baseline, and a supplied optimized assignment — returning their reports.
///
/// The optimized assignment is simulated twice only if it differs from the
/// heuristic one; callers typically pass the constraint-network solution.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Row-major layouts, original loop order.
    pub original: SimulationReport,
    /// The heuristic baseline's layouts.
    pub heuristic: SimulationReport,
    /// The supplied (e.g. constraint-network) layouts.
    pub optimized: SimulationReport,
}

impl ComparisonReport {
    /// Runs the three configurations.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from any of the three runs.
    pub fn run(
        simulator: &Simulator,
        program: &Program,
        optimized: &LayoutAssignment,
    ) -> Result<Self> {
        let original_assignment = LayoutAssignment::all_row_major(program);
        let original = simulator
            .clone()
            .without_restructuring()
            .simulate(program, &original_assignment)?;
        let heuristic_assignment = mlo_layout::heuristic_assignment(program).assignment;
        let heuristic = simulator.simulate(program, &heuristic_assignment)?;
        let optimized = simulator.simulate(program, optimized)?;
        Ok(ComparisonReport {
            original,
            heuristic,
            optimized,
        })
    }
}

/// Map from nest id to the chosen transform description, for reports.
pub type NestTransformMap = HashMap<NestId, String>;

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_ir::{AccessBuilder, ProgramBuilder};
    use mlo_layout::Layout;

    /// A column-wise traversal of a large 2-D array: row-major thrashes,
    /// column-major streams.
    fn column_walk_program() -> Program {
        let n = 256;
        let mut b = ProgramBuilder::new("colwalk");
        let a = b.array("A", vec![n, n], 4);
        // for j { for i { ... A[i][j] ... } }  (i innermost)
        b.nest("walk", vec![("j", 0, n), ("i", 0, n)], |nest| {
            nest.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [0, 1])
                    .row(1, [1, 0])
                    .build(),
            );
        });
        b.build()
    }

    #[test]
    fn matching_layout_beats_mismatched_layout() {
        let p = column_walk_program();
        let a = mlo_ir::ArrayId::new(0);
        let sim = Simulator::new(MachineConfig::date05()).without_restructuring();
        let mut row_major = LayoutAssignment::new();
        row_major.set(a, Layout::row_major(2));
        let mut column_major = LayoutAssignment::new();
        column_major.set(a, Layout::column_major(2));
        let bad = sim.simulate(&p, &row_major).unwrap();
        let good = sim.simulate(&p, &column_major).unwrap();
        assert!(
            good.total_cycles < bad.total_cycles / 2,
            "column-major ({}) should be much faster than row-major ({})",
            good.total_cycles,
            bad.total_cycles
        );
        assert!(good.l1_data.miss_rate() < bad.l1_data.miss_rate());
        assert!(good.speedup_over(&bad) > 2.0);
        assert!(good.improvement_over(&bad) > 50.0);
    }

    #[test]
    fn restructuring_rescues_a_bad_layout() {
        // With restructuring allowed, the simulator interchanges the loops
        // so even the row-major layout streams.
        let p = column_walk_program();
        let a = mlo_ir::ArrayId::new(0);
        let mut row_major = LayoutAssignment::new();
        row_major.set(a, Layout::row_major(2));
        let fixed = Simulator::new(MachineConfig::date05())
            .without_restructuring()
            .simulate(&p, &row_major)
            .unwrap();
        let restructured = Simulator::new(MachineConfig::date05())
            .simulate(&p, &row_major)
            .unwrap();
        assert!(restructured.total_cycles < fixed.total_cycles);
        assert!(restructured
            .nest_transforms
            .iter()
            .any(|(_, t)| t.starts_with("permute")));
    }

    #[test]
    fn report_contains_per_nest_data() {
        let p = column_walk_program();
        let asg = LayoutAssignment::all_row_major(&p);
        let report = Simulator::new(MachineConfig::tiny())
            .simulate(&p, &asg)
            .unwrap();
        assert_eq!(report.nest_cycles.len(), 1);
        assert_eq!(report.nest_transforms.len(), 1);
        assert!(report.total_accesses > 0);
        assert!(!report.to_string().is_empty());
        assert_eq!(report.l1_data.accesses, report.total_accesses);
    }

    #[test]
    fn comparison_report_orders_as_expected() {
        let p = column_walk_program();
        let a = mlo_ir::ArrayId::new(0);
        let sim = Simulator::new(MachineConfig::date05());
        let mut optimized = LayoutAssignment::new();
        optimized.set(a, Layout::column_major(2));
        let cmp = ComparisonReport::run(&sim, &p, &optimized).unwrap();
        // The original (row-major, fixed order) must be the slowest; the
        // heuristic and the optimized layouts both stream.
        assert!(cmp.original.total_cycles >= cmp.heuristic.total_cycles);
        assert!(cmp.original.total_cycles >= cmp.optimized.total_cycles);
    }

    #[test]
    fn empty_nests_still_cost_compute_cycles() {
        let mut b = ProgramBuilder::new("compute_only");
        b.nest("spin", vec![("i", 0, 100)], |n| {
            n.compute(8);
        });
        let p = b.build();
        let report = Simulator::new(MachineConfig::date05())
            .simulate(&p, &LayoutAssignment::new())
            .unwrap();
        assert!(report.total_cycles >= 100 * (8 / 2));
        assert_eq!(report.total_accesses, 0);
    }
}
