//! Hardware stride prefetching (an ablation extension beyond the paper).
//!
//! The paper's machine model has no prefetcher, which is part of why layout
//! mismatches hurt so much: every strided L1 miss pays the full memory
//! latency.  Modern embedded cores hide some of that with a simple stride
//! prefetcher, so this module provides one as an *ablation knob*: the
//! benchmark harness can re-run Table 3 with prefetching enabled and show
//! how much of the layout-optimization benefit survives (spatial locality
//! still wins — a prefetcher burns bandwidth that a good layout does not —
//! but the gap narrows).
//!
//! The prefetcher is a classic reference-prediction table: it tracks the
//! last address and stride of a small number of streams (keyed by the
//! address's region), and when the same stride is seen twice in a row it
//! prefetches `degree` lines ahead into the hierarchy.

use crate::hierarchy::{HierarchyOutcome, MemoryHierarchy};
use crate::MachineConfig;

/// Configuration of the stride prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Number of reference-prediction-table entries (streams tracked).
    pub table_entries: usize,
    /// How many lines ahead to prefetch once a stride is confirmed.
    pub degree: u32,
    /// Size of the region (bytes, power of two) used to map addresses to
    /// table entries; accesses within one region are treated as one stream.
    pub region_bytes: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            table_entries: 16,
            degree: 2,
            region_bytes: 4096,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    region: u64,
    last_address: u64,
    stride: i64,
    confirmed: bool,
    valid: bool,
}

/// Counters describing prefetcher activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Prefetches that were already resident (wasted requests).
    pub redundant: u64,
    /// Demand accesses that hit a line brought in by a prefetch.
    pub useful: u64,
}

impl PrefetchStats {
    /// Fraction of issued prefetches that later served a demand access.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }
}

/// A memory hierarchy fronted by a stride prefetcher.
///
/// Demand accesses go through [`MemoryHierarchy::access`] unchanged; the
/// prefetcher watches the demand stream and inserts predicted lines into
/// the caches in the background (prefetch fills are not charged latency —
/// the usual idealization for a bandwidth-unconstrained model, which makes
/// the prefetcher an *upper bound* on what hardware could recover).
#[derive(Debug, Clone)]
pub struct PrefetchingHierarchy {
    hierarchy: MemoryHierarchy,
    config: PrefetchConfig,
    table: Vec<StreamEntry>,
    prefetched_lines: Vec<u64>,
    stats: PrefetchStats,
}

impl PrefetchingHierarchy {
    /// Creates a prefetching hierarchy for a machine.
    pub fn new(machine: MachineConfig, config: PrefetchConfig) -> Self {
        PrefetchingHierarchy {
            hierarchy: MemoryHierarchy::new(machine),
            config,
            table: vec![StreamEntry::default(); config.table_entries.max(1)],
            prefetched_lines: Vec::new(),
            stats: PrefetchStats::default(),
        }
    }

    /// The wrapped hierarchy (for cache statistics).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Prefetcher counters.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Performs one demand access, trains the prefetcher, and issues any
    /// predicted lines.  Returns the demand access's outcome and latency.
    pub fn access(&mut self, address: u64) -> (HierarchyOutcome, u64) {
        let line_bytes = self.hierarchy.config().l1_data.line_bytes.max(1);
        let line = address / line_bytes;
        let (outcome, latency) = self.hierarchy.access(address);
        if outcome == HierarchyOutcome::L1Hit && self.prefetched_lines.contains(&line) {
            self.stats.useful += 1;
            self.prefetched_lines.retain(|&l| l != line);
        }

        // Train the reference prediction table.
        let region = address / self.config.region_bytes.max(1);
        let slot = (region as usize) % self.table.len();
        let entry = &mut self.table[slot];
        if entry.valid && entry.region == region {
            let stride = address as i64 - entry.last_address as i64;
            if stride != 0 && stride == entry.stride {
                entry.confirmed = true;
            } else {
                entry.confirmed = false;
                entry.stride = stride;
            }
            entry.last_address = address;
        } else {
            *entry = StreamEntry {
                region,
                last_address: address,
                stride: 0,
                confirmed: false,
                valid: true,
            };
        }

        // Issue prefetches once the stride is confirmed.
        let entry = self.table[slot];
        if entry.confirmed && entry.stride != 0 {
            for k in 1..=self.config.degree as i64 {
                let target = entry.last_address as i64 + k * entry.stride;
                if target < 0 {
                    break;
                }
                let target = target as u64;
                let target_line = target / line_bytes;
                if target_line == line || self.prefetched_lines.contains(&target_line) {
                    self.stats.redundant += 1;
                    continue;
                }
                self.stats.issued += 1;
                // Fill the caches without charging demand latency.
                let (fill_outcome, _) = self.hierarchy.access(target);
                if fill_outcome == HierarchyOutcome::L1Hit {
                    self.stats.redundant += 1;
                } else {
                    self.prefetched_lines.push(target_line);
                    if self.prefetched_lines.len() > 4 * self.table.len() {
                        self.prefetched_lines.remove(0);
                    }
                }
            }
        }

        (outcome, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequential_latency(prefetch: Option<PrefetchConfig>, count: u64, stride: u64) -> u64 {
        let machine = MachineConfig::date05();
        let mut total = 0u64;
        match prefetch {
            Some(config) => {
                let mut h = PrefetchingHierarchy::new(machine, config);
                for i in 0..count {
                    total += h.access(i * stride).1;
                }
            }
            None => {
                let mut h = MemoryHierarchy::new(machine);
                for i in 0..count {
                    total += h.access(i * stride).1;
                }
            }
        }
        total
    }

    #[test]
    fn stride_prefetching_reduces_latency_on_streaming_accesses() {
        // A large-stride stream misses every line without prefetching; the
        // stride prefetcher hides most of those misses.
        let without = sequential_latency(None, 2000, 64);
        let with = sequential_latency(Some(PrefetchConfig::default()), 2000, 64);
        assert!(
            with < without,
            "prefetching should help a strided stream ({with} vs {without})"
        );
    }

    #[test]
    fn prefetcher_is_harmless_on_cache_resident_data() {
        // Repeated accesses to one line: everything hits; the prefetcher
        // must not change the latency.
        let machine = MachineConfig::date05();
        let mut plain = MemoryHierarchy::new(machine);
        let mut pf = PrefetchingHierarchy::new(machine, PrefetchConfig::default());
        let mut lat_plain = 0;
        let mut lat_pf = 0;
        for _ in 0..100 {
            lat_plain += plain.access(128).1;
            lat_pf += pf.access(128).1;
        }
        assert_eq!(lat_plain, lat_pf);
        // A zero stride is never confirmed, so nothing is issued.
        assert_eq!(pf.stats().issued, 0);
    }

    #[test]
    fn useful_prefetches_are_counted() {
        let mut pf = PrefetchingHierarchy::new(MachineConfig::date05(), PrefetchConfig::default());
        // Walk a stream with a 64-byte stride (new L1 line every other step
        // would be 32B lines; 64B stride = new line each access).
        for i in 0..500u64 {
            pf.access(i * 64);
        }
        assert!(pf.stats().issued > 0);
        assert!(pf.stats().useful > 0);
        assert!(pf.stats().accuracy() > 0.3);
        assert!(pf.hierarchy().l1_stats().accesses >= 500);
    }

    #[test]
    fn irregular_streams_issue_few_prefetches() {
        let mut pf = PrefetchingHierarchy::new(MachineConfig::date05(), PrefetchConfig::default());
        // Pseudo-random jumps inside one region: strides never repeat, so
        // the prefetcher stays quiet.
        let mut addr = 1u64;
        for _ in 0..200 {
            addr = (addr
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493))
                % 4096;
            pf.access(addr);
        }
        assert_eq!(pf.stats().useful.min(5), pf.stats().useful);
        assert!(pf.stats().issued < 50);
    }

    #[test]
    fn stats_accuracy_handles_zero_issues() {
        let s = PrefetchStats::default();
        assert_eq!(s.accuracy(), 0.0);
    }

    #[test]
    fn default_config_is_sane() {
        let c = PrefetchConfig::default();
        assert!(c.table_entries > 0);
        assert!(c.degree > 0);
        assert!(c.region_bytes.is_power_of_two());
    }
}
