//! A trace-driven cache hierarchy and embedded-core timing model.
//!
//! The paper evaluates layout quality by running the optimized codes through
//! SimpleScalar configured as a two-issue embedded processor with separate
//! 8 KB 2-way L1 instruction/data caches (32-byte lines), a unified 64 KB
//! 4-way L2 (64-byte lines) and 1 / 6 / 70-cycle L1 / L2 / memory latencies.
//! SimpleScalar itself is not redistributable here, so this crate provides
//! the substitute described in `DESIGN.md`: the same cache geometry, the
//! same latencies, and a simple in-order 2-issue timing model, driven by
//! address traces generated directly from the IR under a chosen layout
//! assignment.  Absolute cycle counts differ from the paper's testbed, but
//! the quantity the experiment depends on — how spatial locality changes
//! with the memory layout — is modelled by the same mechanism.
//!
//! * [`Cache`] — one set-associative LRU cache,
//! * [`MemoryHierarchy`] — L1D + unified L2 + main memory,
//! * [`MachineConfig`] — the paper's machine parameters (defaults),
//! * [`trace`] — address-trace generation from a program and a
//!   [`mlo_layout::LayoutAssignment`],
//! * [`Simulator`] — replaying a program and reporting cycles and per-level
//!   hit/miss statistics.
//!
//! # Example
//!
//! ```
//! use mlo_cachesim::{MachineConfig, Simulator};
//! use mlo_ir::{ProgramBuilder, AccessBuilder};
//! use mlo_layout::LayoutAssignment;
//!
//! let mut b = ProgramBuilder::new("demo");
//! let a = b.array("A", vec![64, 64], 4);
//! b.nest("sweep", vec![("i", 0, 64), ("j", 0, 64)], |n| {
//!     n.read(a, AccessBuilder::new(2, 2).row(0, [1, 0]).row(1, [0, 1]).build());
//! });
//! let program = b.build();
//!
//! let row_major = LayoutAssignment::all_row_major(&program);
//! let report = Simulator::new(MachineConfig::date05())
//!     .simulate(&program, &row_major)
//!     .unwrap();
//! assert!(report.total_cycles > 0);
//! assert!(report.l1_data.hit_rate() > 0.8); // unit-stride sweep hits in L1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod prefetch;
pub mod simulator;
pub mod stats;
pub mod trace;

pub use cache::{AccessOutcome, Cache, CacheConfig};
pub use config::MachineConfig;
pub use hierarchy::{HierarchyOutcome, MemoryHierarchy};
pub use prefetch::{PrefetchConfig, PrefetchStats, PrefetchingHierarchy};
pub use simulator::{SimulationReport, Simulator};
pub use stats::CacheStats;
pub use trace::{MemoryAccess, TraceGenerator, TraceOptions};

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A cache parameter was invalid (zero or not a power of two where one
    /// is required).
    InvalidCacheConfig(String),
    /// An array referenced by the program has no layout in the assignment.
    MissingLayout(mlo_ir::ArrayId),
    /// The layout could not be turned into an address map.
    Layout(mlo_layout::LayoutError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidCacheConfig(msg) => write!(f, "invalid cache configuration: {msg}"),
            SimError::MissingLayout(id) => write!(f, "array {id} has no layout assigned"),
            SimError::Layout(e) => write!(f, "layout error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<mlo_layout::LayoutError> for SimError {
    fn from(e: mlo_layout::LayoutError) -> Self {
        SimError::Layout(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(SimError::InvalidCacheConfig("assoc 0".into())
            .to_string()
            .contains("assoc 0"));
        assert!(SimError::MissingLayout(mlo_ir::ArrayId::new(2))
            .to_string()
            .contains("Q2"));
        let e: SimError = mlo_layout::LayoutError::MissingLayout(mlo_ir::ArrayId::new(1)).into();
        assert!(e.to_string().contains("layout error"));
    }
}
