//! Generating data-access traces from a program and a layout assignment.
//!
//! Every array gets a base address (aligned to the L2 line size, arrays laid
//! out back to back with a guard gap) and an [`mlo_layout::AddressMap`]
//! derived from its assigned layout.  The generator then walks every nest's
//! iteration space in execution order — under the loop restructuring chosen
//! for that nest — and emits one byte address per reference per iteration.

use crate::{Result, SimError};
use mlo_ir::{IterationSpace, LoopTransform, NestId, Program};
use mlo_layout::{AddressMap, LayoutAssignment};
use mlo_linalg::IntVec;
use std::collections::HashMap;

/// One recorded data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Byte address.
    pub address: u64,
    /// Whether the access is a write.
    pub is_write: bool,
}

/// Options controlling trace generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Loops whose trip count exceeds this bound are sub-sampled to roughly
    /// this many iterations (strides preserved).  Keeps very large nests
    /// simulable in bounded time.
    pub max_trip_per_loop: i64,
    /// Alignment (bytes) and guard gap between consecutive arrays.
    pub array_alignment: u64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            max_trip_per_loop: 256,
            array_alignment: 64,
        }
    }
}

/// Generates per-nest address traces for a program under a layout
/// assignment.
#[derive(Debug)]
pub struct TraceGenerator {
    options: TraceOptions,
}

impl TraceGenerator {
    /// Creates a generator with the given options.
    pub fn new(options: TraceOptions) -> Self {
        TraceGenerator { options }
    }

    /// Creates a generator with default options.
    pub fn with_defaults() -> Self {
        Self::new(TraceOptions::default())
    }

    /// The options in use.
    pub fn options(&self) -> &TraceOptions {
        &self.options
    }

    /// Builds the address maps and base addresses of every array.
    ///
    /// # Errors
    ///
    /// Fails when an array referenced by the program has no layout or its
    /// layout cannot be linearized.
    pub fn plan_memory(
        &self,
        program: &Program,
        assignment: &LayoutAssignment,
    ) -> Result<MemoryPlan> {
        let mut maps = HashMap::new();
        let mut bases = HashMap::new();
        let mut next_base = 0u64;
        for array in program.arrays() {
            let layout = assignment
                .layout_of(array.id())
                .ok_or(SimError::MissingLayout(array.id()))?;
            let map = AddressMap::new(array, layout)?;
            let span = map.span_bytes() as u64;
            bases.insert(array.id(), next_base);
            let align = self.options.array_alignment.max(1);
            next_base += span.div_ceil(align) * align + align;
            maps.insert(array.id(), map);
        }
        Ok(MemoryPlan {
            maps,
            bases,
            total_bytes: next_base,
        })
    }

    /// Generates the trace of one nest under a given restructuring.
    ///
    /// Indices that fall outside the declared array box (boundary-shifted
    /// accesses such as `A[i][j-1]`, or skewed accesses such as `A[i+j][j]`
    /// over an array not declared wide enough) are clamped to the nearest
    /// allocated element, the way an edge-padded kernel would behave.  This
    /// keeps every generated address inside the array's allocation.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TraceGenerator::plan_memory`] (the plan is
    /// taken as an argument, so this function itself only panics on
    /// malformed IR).
    pub fn nest_trace(
        &self,
        program: &Program,
        nest_id: NestId,
        transform: &LoopTransform,
        plan: &MemoryPlan,
    ) -> Vec<MemoryAccess> {
        let nest = &program.nests()[nest_id.index()];
        let walker =
            IterationSpace::transformed(nest, transform).subsampled(self.options.max_trip_per_loop);
        let mut trace = Vec::new();
        for iteration in walker {
            for reference in nest.references() {
                let array = program
                    .array(reference.array())
                    .expect("references only name arrays declared by the program");
                let mut index = reference.access().index_for(&iteration);
                for d in 0..index.dim() {
                    index[d] = index[d].clamp(0, array.extent(d) - 1);
                }
                let address = plan.address_of(reference.array(), &index);
                trace.push(MemoryAccess {
                    address,
                    is_write: reference.is_write(),
                });
            }
        }
        trace
    }
}

/// Base addresses and address maps for every array of a program.
#[derive(Debug)]
pub struct MemoryPlan {
    maps: HashMap<mlo_ir::ArrayId, AddressMap>,
    bases: HashMap<mlo_ir::ArrayId, u64>,
    total_bytes: u64,
}

impl MemoryPlan {
    /// The byte address of one array element.
    ///
    /// # Panics
    ///
    /// Panics if the array is not part of the plan (callers obtain plans
    /// from [`TraceGenerator::plan_memory`], which covers every array).
    pub fn address_of(&self, array: mlo_ir::ArrayId, index: &IntVec) -> u64 {
        let map = &self.maps[&array];
        let base = self.bases[&array];
        let offset = map.byte_offset(index);
        debug_assert!(offset >= 0, "address map produced a negative offset");
        base + offset as u64
    }

    /// Total bytes spanned by all arrays including padding and guard gaps.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The base address of an array, if planned.
    pub fn base_of(&self, array: mlo_ir::ArrayId) -> Option<u64> {
        self.bases.get(&array).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_ir::{AccessBuilder, ArrayId, ProgramBuilder};
    use mlo_layout::Layout;

    fn simple_program() -> Program {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("A", vec![8, 8], 4);
        let v = b.array("V", vec![16], 4);
        b.nest("sweep", vec![("i", 0, 8), ("j", 0, 8)], |n| {
            n.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            n.write(v, AccessBuilder::new(1, 2).row(0, [1, 0]).build());
        });
        b.build()
    }

    #[test]
    fn plan_assigns_disjoint_address_ranges() {
        let p = simple_program();
        let asg = LayoutAssignment::all_row_major(&p);
        let gen = TraceGenerator::with_defaults();
        let plan = gen.plan_memory(&p, &asg).unwrap();
        let base_a = plan.base_of(ArrayId::new(0)).unwrap();
        let base_v = plan.base_of(ArrayId::new(1)).unwrap();
        assert_ne!(base_a, base_v);
        // A spans 8*8*4 = 256 bytes; V must start beyond that.
        assert!(base_v >= base_a + 256 || base_a >= base_v + 64);
        assert!(plan.total_bytes() >= 256 + 64);
        // Alignment respected.
        assert_eq!(base_a % 64, 0);
        assert_eq!(base_v % 64, 0);
    }

    #[test]
    fn missing_layout_is_an_error() {
        let p = simple_program();
        let mut asg = LayoutAssignment::new();
        asg.set(ArrayId::new(0), Layout::row_major(2));
        let gen = TraceGenerator::with_defaults();
        assert!(matches!(
            gen.plan_memory(&p, &asg),
            Err(SimError::MissingLayout(id)) if id == ArrayId::new(1)
        ));
    }

    #[test]
    fn trace_has_one_entry_per_reference_per_iteration() {
        let p = simple_program();
        let asg = LayoutAssignment::all_row_major(&p);
        let gen = TraceGenerator::with_defaults();
        let plan = gen.plan_memory(&p, &asg).unwrap();
        let trace = gen.nest_trace(
            &p,
            mlo_ir::NestId::new(0),
            &LoopTransform::identity(2),
            &plan,
        );
        assert_eq!(trace.len(), 8 * 8 * 2);
        // Reads and writes both appear.
        assert!(trace.iter().any(|a| a.is_write));
        assert!(trace.iter().any(|a| !a.is_write));
        // Row-major A with j innermost: consecutive A accesses differ by 4
        // bytes within a row.
        let a_addrs: Vec<u64> = trace.iter().step_by(2).map(|a| a.address).collect();
        assert_eq!(a_addrs[1] - a_addrs[0], 4);
    }

    #[test]
    fn layout_changes_the_addresses() {
        let p = simple_program();
        let gen = TraceGenerator::with_defaults();
        let rm = LayoutAssignment::all_row_major(&p);
        let mut cm = LayoutAssignment::all_row_major(&p);
        cm.set(ArrayId::new(0), Layout::column_major(2));
        let plan_rm = gen.plan_memory(&p, &rm).unwrap();
        let plan_cm = gen.plan_memory(&p, &cm).unwrap();
        let t_rm = gen.nest_trace(
            &p,
            mlo_ir::NestId::new(0),
            &LoopTransform::identity(2),
            &plan_rm,
        );
        let t_cm = gen.nest_trace(
            &p,
            mlo_ir::NestId::new(0),
            &LoopTransform::identity(2),
            &plan_cm,
        );
        assert_eq!(t_rm.len(), t_cm.len());
        // Under column-major, consecutive j iterations of A[i][j] jump by a
        // full column (8 elements * 4 bytes).
        assert_eq!(t_cm[2].address - t_cm[0].address, 32);
        assert_eq!(t_rm[2].address - t_rm[0].address, 4);
    }

    #[test]
    fn subsampling_bounds_trace_length() {
        let mut b = ProgramBuilder::new("big");
        let a = b.array("A", vec![10_000], 4);
        b.nest("scan", vec![("i", 0, 10_000)], |n| {
            n.read(a, AccessBuilder::new(1, 1).row(0, [1]).build());
        });
        let p = b.build();
        let asg = LayoutAssignment::all_row_major(&p);
        let gen = TraceGenerator::new(TraceOptions {
            max_trip_per_loop: 100,
            array_alignment: 64,
        });
        let plan = gen.plan_memory(&p, &asg).unwrap();
        let trace = gen.nest_trace(
            &p,
            mlo_ir::NestId::new(0),
            &LoopTransform::identity(1),
            &plan,
        );
        assert!(trace.len() <= 100);
        assert!(trace.len() >= 90);
    }
}
