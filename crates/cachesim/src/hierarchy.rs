//! The two-level data-cache hierarchy plus main memory.

use crate::cache::{AccessOutcome, Cache};
use crate::config::MachineConfig;
use crate::stats::CacheStats;

/// Where an access was finally served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyOutcome {
    /// Served by the L1 data cache.
    L1Hit,
    /// Missed L1, served by the unified L2.
    L2Hit,
    /// Missed both caches, served by main memory.
    MemoryAccess,
}

/// L1 data cache, unified L2 and main memory with the configured latencies.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MachineConfig,
    l1_data: Cache,
    l2: Cache,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy for the given machine.
    pub fn new(config: MachineConfig) -> Self {
        MemoryHierarchy {
            l1_data: Cache::new(config.l1_data),
            l2: Cache::new(config.l2),
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Performs one data access and returns where it was served from and
    /// its latency in cycles.
    pub fn access(&mut self, address: u64) -> (HierarchyOutcome, u64) {
        match self.l1_data.access(address) {
            AccessOutcome::Hit => (HierarchyOutcome::L1Hit, self.config.l1_latency),
            AccessOutcome::Miss => match self.l2.access(address) {
                AccessOutcome::Hit => (
                    HierarchyOutcome::L2Hit,
                    self.config.l1_latency + self.config.l2_latency,
                ),
                AccessOutcome::Miss => (
                    HierarchyOutcome::MemoryAccess,
                    self.config.l1_latency + self.config.l2_latency + self.config.memory_latency,
                ),
            },
        }
    }

    /// L1 data-cache statistics.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1_data.stats()
    }

    /// L2 statistics (accesses are L1 misses only).
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Empties both caches, keeping statistics.
    pub fn flush(&mut self) {
        self.l1_data.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_levels() {
        let mut h = MemoryHierarchy::new(MachineConfig::date05());
        // Cold miss goes to memory.
        let (where_from, lat) = h.access(0);
        assert_eq!(where_from, HierarchyOutcome::MemoryAccess);
        assert_eq!(lat, 1 + 6 + 70);
        // Immediately after, the same line hits in L1.
        let (where_from, lat) = h.access(4);
        assert_eq!(where_from, HierarchyOutcome::L1Hit);
        assert_eq!(lat, 1);
    }

    #[test]
    fn l2_serves_l1_conflict_misses() {
        // Two addresses that conflict in L1 (stride = L1 size) but coexist
        // in the larger, more associative L2.
        let cfg = MachineConfig::tiny();
        let stride = cfg.l1_data.size_bytes; // same L1 set, different L2 set or way
        let mut h = MemoryHierarchy::new(cfg);
        // Warm both lines (memory accesses).
        h.access(0);
        h.access(stride);
        h.access(2 * stride);
        // Re-access: L1 (2-way) cannot hold all three, L2 can.
        let (outcome, lat) = h.access(0);
        assert_eq!(outcome, HierarchyOutcome::L2Hit);
        assert_eq!(lat, 1 + 6);
        assert!(h.l2_stats().accesses > 0);
        assert!(h.l1_stats().misses >= 4);
    }

    #[test]
    fn flush_forces_memory_accesses_again() {
        let mut h = MemoryHierarchy::new(MachineConfig::tiny());
        h.access(64);
        h.flush();
        let (outcome, _) = h.access(64);
        assert_eq!(outcome, HierarchyOutcome::MemoryAccess);
    }
}
