/root/repo/target/release/deps/weighted_ext-a9cf470b8b18cec7.d: crates/bench/src/bin/weighted_ext.rs

/root/repo/target/release/deps/weighted_ext-a9cf470b8b18cec7: crates/bench/src/bin/weighted_ext.rs

crates/bench/src/bin/weighted_ext.rs:
