/root/repo/target/release/deps/figure3-e88ef77b63a8f0bc.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-e88ef77b63a8f0bc: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
