/root/repo/target/release/deps/mlo_linalg-d36eaaea39c61056.d: crates/linalg/src/lib.rs crates/linalg/src/elimination.rs crates/linalg/src/gcd.rs crates/linalg/src/hermite.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/rational.rs crates/linalg/src/unimodular.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libmlo_linalg-d36eaaea39c61056.rlib: crates/linalg/src/lib.rs crates/linalg/src/elimination.rs crates/linalg/src/gcd.rs crates/linalg/src/hermite.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/rational.rs crates/linalg/src/unimodular.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libmlo_linalg-d36eaaea39c61056.rmeta: crates/linalg/src/lib.rs crates/linalg/src/elimination.rs crates/linalg/src/gcd.rs crates/linalg/src/hermite.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/rational.rs crates/linalg/src/unimodular.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/elimination.rs:
crates/linalg/src/gcd.rs:
crates/linalg/src/hermite.rs:
crates/linalg/src/kernel.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/rational.rs:
crates/linalg/src/unimodular.rs:
crates/linalg/src/vector.rs:
