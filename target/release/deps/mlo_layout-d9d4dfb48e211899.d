/root/repo/target/release/deps/mlo_layout-d9d4dfb48e211899.d: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs

/root/repo/target/release/deps/libmlo_layout-d9d4dfb48e211899.rlib: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs

/root/repo/target/release/deps/libmlo_layout-d9d4dfb48e211899.rmeta: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs

crates/layout/src/lib.rs:
crates/layout/src/apply.rs:
crates/layout/src/candidates.rs:
crates/layout/src/constraints.rs:
crates/layout/src/dynamic.rs:
crates/layout/src/heuristic.rs:
crates/layout/src/hyperplane.rs:
crates/layout/src/locality.rs:
crates/layout/src/quality.rs:
crates/layout/src/weights.rs:
