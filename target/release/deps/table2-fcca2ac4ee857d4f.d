/root/repo/target/release/deps/table2-fcca2ac4ee857d4f.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-fcca2ac4ee857d4f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
