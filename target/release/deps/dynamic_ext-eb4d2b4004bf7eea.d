/root/repo/target/release/deps/dynamic_ext-eb4d2b4004bf7eea.d: crates/bench/src/bin/dynamic_ext.rs

/root/repo/target/release/deps/dynamic_ext-eb4d2b4004bf7eea: crates/bench/src/bin/dynamic_ext.rs

crates/bench/src/bin/dynamic_ext.rs:
