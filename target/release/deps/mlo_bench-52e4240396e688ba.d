/root/repo/target/release/deps/mlo_bench-52e4240396e688ba.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmlo_bench-52e4240396e688ba.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmlo_bench-52e4240396e688ba.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
