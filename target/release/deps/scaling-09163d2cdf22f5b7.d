/root/repo/target/release/deps/scaling-09163d2cdf22f5b7.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-09163d2cdf22f5b7: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
