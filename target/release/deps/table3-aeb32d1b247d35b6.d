/root/repo/target/release/deps/table3-aeb32d1b247d35b6.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-aeb32d1b247d35b6: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
