/root/repo/target/release/deps/mlo_cachesim-bebaf311c4ddb0d8.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

/root/repo/target/release/deps/libmlo_cachesim-bebaf311c4ddb0d8.rlib: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

/root/repo/target/release/deps/libmlo_cachesim-bebaf311c4ddb0d8.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/config.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/simulator.rs:
crates/cachesim/src/stats.rs:
crates/cachesim/src/trace.rs:
