/root/repo/target/release/deps/figure4-895960931c426c13.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-895960931c426c13: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
