/root/repo/target/release/deps/mlo_benchmarks-8746e4b187544363.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

/root/repo/target/release/deps/libmlo_benchmarks-8746e4b187544363.rlib: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

/root/repo/target/release/deps/libmlo_benchmarks-8746e4b187544363.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/generators.rs:
crates/benchmarks/src/random.rs:
crates/benchmarks/src/suite.rs:
