/root/repo/target/release/deps/rand-dd28413a1e34094d.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-dd28413a1e34094d.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-dd28413a1e34094d.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
