/root/repo/target/release/deps/mlo_csp-c88d2e2bf27f8c17.d: crates/csp/src/lib.rs crates/csp/src/analysis.rs crates/csp/src/assignment.rs crates/csp/src/constraint.rs crates/csp/src/domain.rs crates/csp/src/network.rs crates/csp/src/random.rs crates/csp/src/solver/mod.rs crates/csp/src/solver/ac3.rs crates/csp/src/solver/engine.rs crates/csp/src/solver/enumerate.rs crates/csp/src/solver/local.rs crates/csp/src/solver/ordering.rs crates/csp/src/weighted.rs

/root/repo/target/release/deps/libmlo_csp-c88d2e2bf27f8c17.rlib: crates/csp/src/lib.rs crates/csp/src/analysis.rs crates/csp/src/assignment.rs crates/csp/src/constraint.rs crates/csp/src/domain.rs crates/csp/src/network.rs crates/csp/src/random.rs crates/csp/src/solver/mod.rs crates/csp/src/solver/ac3.rs crates/csp/src/solver/engine.rs crates/csp/src/solver/enumerate.rs crates/csp/src/solver/local.rs crates/csp/src/solver/ordering.rs crates/csp/src/weighted.rs

/root/repo/target/release/deps/libmlo_csp-c88d2e2bf27f8c17.rmeta: crates/csp/src/lib.rs crates/csp/src/analysis.rs crates/csp/src/assignment.rs crates/csp/src/constraint.rs crates/csp/src/domain.rs crates/csp/src/network.rs crates/csp/src/random.rs crates/csp/src/solver/mod.rs crates/csp/src/solver/ac3.rs crates/csp/src/solver/engine.rs crates/csp/src/solver/enumerate.rs crates/csp/src/solver/local.rs crates/csp/src/solver/ordering.rs crates/csp/src/weighted.rs

crates/csp/src/lib.rs:
crates/csp/src/analysis.rs:
crates/csp/src/assignment.rs:
crates/csp/src/constraint.rs:
crates/csp/src/domain.rs:
crates/csp/src/network.rs:
crates/csp/src/random.rs:
crates/csp/src/solver/mod.rs:
crates/csp/src/solver/ac3.rs:
crates/csp/src/solver/engine.rs:
crates/csp/src/solver/enumerate.rs:
crates/csp/src/solver/local.rs:
crates/csp/src/solver/ordering.rs:
crates/csp/src/weighted.rs:
