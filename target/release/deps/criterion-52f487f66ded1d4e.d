/root/repo/target/release/deps/criterion-52f487f66ded1d4e.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-52f487f66ded1d4e.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-52f487f66ded1d4e.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
