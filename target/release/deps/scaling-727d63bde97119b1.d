/root/repo/target/release/deps/scaling-727d63bde97119b1.d: crates/bench/benches/scaling.rs

/root/repo/target/release/deps/scaling-727d63bde97119b1: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
