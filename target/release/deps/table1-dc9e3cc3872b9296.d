/root/repo/target/release/deps/table1-dc9e3cc3872b9296.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-dc9e3cc3872b9296: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
