/root/repo/target/release/deps/mlo_core-aef1c8dce0d87b4a.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/experiments.rs crates/core/src/optimizer.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/strategy.rs

/root/repo/target/release/deps/libmlo_core-aef1c8dce0d87b4a.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/experiments.rs crates/core/src/optimizer.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/strategy.rs

/root/repo/target/release/deps/libmlo_core-aef1c8dce0d87b4a.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/experiments.rs crates/core/src/optimizer.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/strategy.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/experiments.rs:
crates/core/src/optimizer.rs:
crates/core/src/prelude.rs:
crates/core/src/report.rs:
crates/core/src/request.rs:
crates/core/src/strategy.rs:
