/root/repo/target/release/deps/constraint_layout-985a7774aaf8531e.d: src/lib.rs

/root/repo/target/release/deps/libconstraint_layout-985a7774aaf8531e.rlib: src/lib.rs

/root/repo/target/release/deps/libconstraint_layout-985a7774aaf8531e.rmeta: src/lib.rs

src/lib.rs:
