/root/repo/target/release/examples/_verify_probe-cc4deb1d58c1572d.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-cc4deb1d58c1572d: examples/_verify_probe.rs

examples/_verify_probe.rs:
