/root/repo/target/release/examples/batch_optimize-6e2d000757e463a0.d: examples/batch_optimize.rs

/root/repo/target/release/examples/batch_optimize-6e2d000757e463a0: examples/batch_optimize.rs

examples/batch_optimize.rs:
