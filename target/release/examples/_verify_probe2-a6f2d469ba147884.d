/root/repo/target/release/examples/_verify_probe2-a6f2d469ba147884.d: examples/_verify_probe2.rs

/root/repo/target/release/examples/_verify_probe2-a6f2d469ba147884: examples/_verify_probe2.rs

examples/_verify_probe2.rs:
