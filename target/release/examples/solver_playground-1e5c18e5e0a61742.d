/root/repo/target/release/examples/solver_playground-1e5c18e5e0a61742.d: examples/solver_playground.rs

/root/repo/target/release/examples/solver_playground-1e5c18e5e0a61742: examples/solver_playground.rs

examples/solver_playground.rs:
