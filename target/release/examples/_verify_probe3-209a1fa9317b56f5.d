/root/repo/target/release/examples/_verify_probe3-209a1fa9317b56f5.d: examples/_verify_probe3.rs

/root/repo/target/release/examples/_verify_probe3-209a1fa9317b56f5: examples/_verify_probe3.rs

examples/_verify_probe3.rs:
