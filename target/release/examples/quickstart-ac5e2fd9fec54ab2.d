/root/repo/target/release/examples/quickstart-ac5e2fd9fec54ab2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ac5e2fd9fec54ab2: examples/quickstart.rs

examples/quickstart.rs:
