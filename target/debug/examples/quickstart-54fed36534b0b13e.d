/root/repo/target/debug/examples/quickstart-54fed36534b0b13e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-54fed36534b0b13e: examples/quickstart.rs

examples/quickstart.rs:
