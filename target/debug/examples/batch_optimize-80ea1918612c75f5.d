/root/repo/target/debug/examples/batch_optimize-80ea1918612c75f5.d: examples/batch_optimize.rs

/root/repo/target/debug/examples/libbatch_optimize-80ea1918612c75f5.rmeta: examples/batch_optimize.rs

examples/batch_optimize.rs:
