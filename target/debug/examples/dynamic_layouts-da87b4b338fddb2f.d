/root/repo/target/debug/examples/dynamic_layouts-da87b4b338fddb2f.d: examples/dynamic_layouts.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_layouts-da87b4b338fddb2f.rmeta: examples/dynamic_layouts.rs Cargo.toml

examples/dynamic_layouts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
