/root/repo/target/debug/examples/batch_optimize-01eb765bc28ff14c.d: examples/batch_optimize.rs

/root/repo/target/debug/examples/batch_optimize-01eb765bc28ff14c: examples/batch_optimize.rs

examples/batch_optimize.rs:
