/root/repo/target/debug/examples/weighted_priorities-415c3563e7169b6b.d: examples/weighted_priorities.rs

/root/repo/target/debug/examples/libweighted_priorities-415c3563e7169b6b.rmeta: examples/weighted_priorities.rs

examples/weighted_priorities.rs:
