/root/repo/target/debug/examples/quickstart-0b2a228c4b7e4542.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0b2a228c4b7e4542: examples/quickstart.rs

examples/quickstart.rs:
