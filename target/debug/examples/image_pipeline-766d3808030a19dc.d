/root/repo/target/debug/examples/image_pipeline-766d3808030a19dc.d: examples/image_pipeline.rs

/root/repo/target/debug/examples/libimage_pipeline-766d3808030a19dc.rmeta: examples/image_pipeline.rs

examples/image_pipeline.rs:
