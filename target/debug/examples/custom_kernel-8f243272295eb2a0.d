/root/repo/target/debug/examples/custom_kernel-8f243272295eb2a0.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/libcustom_kernel-8f243272295eb2a0.rmeta: examples/custom_kernel.rs

examples/custom_kernel.rs:
