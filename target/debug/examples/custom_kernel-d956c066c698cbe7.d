/root/repo/target/debug/examples/custom_kernel-d956c066c698cbe7.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-d956c066c698cbe7: examples/custom_kernel.rs

examples/custom_kernel.rs:
