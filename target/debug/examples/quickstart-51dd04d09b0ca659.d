/root/repo/target/debug/examples/quickstart-51dd04d09b0ca659.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-51dd04d09b0ca659.rmeta: examples/quickstart.rs

examples/quickstart.rs:
