/root/repo/target/debug/examples/weighted_priorities-d0d9e401ef84bcc8.d: examples/weighted_priorities.rs

/root/repo/target/debug/examples/weighted_priorities-d0d9e401ef84bcc8: examples/weighted_priorities.rs

examples/weighted_priorities.rs:
