/root/repo/target/debug/examples/custom_kernel-d28799e1a1056795.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-d28799e1a1056795: examples/custom_kernel.rs

examples/custom_kernel.rs:
