/root/repo/target/debug/examples/weighted_priorities-6046bbfc70f4efb1.d: examples/weighted_priorities.rs

/root/repo/target/debug/examples/weighted_priorities-6046bbfc70f4efb1: examples/weighted_priorities.rs

examples/weighted_priorities.rs:
