/root/repo/target/debug/examples/image_pipeline-9cf37e9bd598fbff.d: examples/image_pipeline.rs

/root/repo/target/debug/examples/image_pipeline-9cf37e9bd598fbff: examples/image_pipeline.rs

examples/image_pipeline.rs:
