/root/repo/target/debug/examples/solver_playground-363b3c352d168a0c.d: examples/solver_playground.rs Cargo.toml

/root/repo/target/debug/examples/libsolver_playground-363b3c352d168a0c.rmeta: examples/solver_playground.rs Cargo.toml

examples/solver_playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
