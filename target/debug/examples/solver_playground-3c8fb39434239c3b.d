/root/repo/target/debug/examples/solver_playground-3c8fb39434239c3b.d: examples/solver_playground.rs

/root/repo/target/debug/examples/libsolver_playground-3c8fb39434239c3b.rmeta: examples/solver_playground.rs

examples/solver_playground.rs:
