/root/repo/target/debug/examples/dynamic_layouts-056662d996ff7025.d: examples/dynamic_layouts.rs

/root/repo/target/debug/examples/dynamic_layouts-056662d996ff7025: examples/dynamic_layouts.rs

examples/dynamic_layouts.rs:
