/root/repo/target/debug/examples/dynamic_layouts-a38db88e265af9b3.d: examples/dynamic_layouts.rs

/root/repo/target/debug/examples/dynamic_layouts-a38db88e265af9b3: examples/dynamic_layouts.rs

examples/dynamic_layouts.rs:
