/root/repo/target/debug/examples/solver_playground-ba62bede5b8cdd14.d: examples/solver_playground.rs

/root/repo/target/debug/examples/solver_playground-ba62bede5b8cdd14: examples/solver_playground.rs

examples/solver_playground.rs:
