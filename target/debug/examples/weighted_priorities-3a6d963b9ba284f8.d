/root/repo/target/debug/examples/weighted_priorities-3a6d963b9ba284f8.d: examples/weighted_priorities.rs Cargo.toml

/root/repo/target/debug/examples/libweighted_priorities-3a6d963b9ba284f8.rmeta: examples/weighted_priorities.rs Cargo.toml

examples/weighted_priorities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
