/root/repo/target/debug/examples/dynamic_layouts-df64b1aa5246b29c.d: examples/dynamic_layouts.rs

/root/repo/target/debug/examples/libdynamic_layouts-df64b1aa5246b29c.rmeta: examples/dynamic_layouts.rs

examples/dynamic_layouts.rs:
