/root/repo/target/debug/examples/image_pipeline-a178f27cd321fa0d.d: examples/image_pipeline.rs

/root/repo/target/debug/examples/image_pipeline-a178f27cd321fa0d: examples/image_pipeline.rs

examples/image_pipeline.rs:
