/root/repo/target/debug/examples/solver_playground-d31c6303e7daa69a.d: examples/solver_playground.rs

/root/repo/target/debug/examples/solver_playground-d31c6303e7daa69a: examples/solver_playground.rs

examples/solver_playground.rs:
