/root/repo/target/debug/examples/batch_optimize-32e99cf34be2d30a.d: examples/batch_optimize.rs Cargo.toml

/root/repo/target/debug/examples/libbatch_optimize-32e99cf34be2d30a.rmeta: examples/batch_optimize.rs Cargo.toml

examples/batch_optimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
