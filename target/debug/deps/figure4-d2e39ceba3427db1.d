/root/repo/target/debug/deps/figure4-d2e39ceba3427db1.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/libfigure4-d2e39ceba3427db1.rmeta: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
