/root/repo/target/debug/deps/mlo_core-5d40cf42d728586e.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/experiments.rs crates/core/src/optimizer.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_core-5d40cf42d728586e.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/experiments.rs crates/core/src/optimizer.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/strategy.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/experiments.rs:
crates/core/src/optimizer.rs:
crates/core/src/prelude.rs:
crates/core/src/report.rs:
crates/core/src/request.rs:
crates/core/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
