/root/repo/target/debug/deps/table1-db5eed6ca20a1adf.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-db5eed6ca20a1adf.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
