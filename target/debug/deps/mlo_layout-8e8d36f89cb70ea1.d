/root/repo/target/debug/deps/mlo_layout-8e8d36f89cb70ea1.d: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs

/root/repo/target/debug/deps/libmlo_layout-8e8d36f89cb70ea1.rlib: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs

/root/repo/target/debug/deps/libmlo_layout-8e8d36f89cb70ea1.rmeta: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs

crates/layout/src/lib.rs:
crates/layout/src/apply.rs:
crates/layout/src/candidates.rs:
crates/layout/src/constraints.rs:
crates/layout/src/dynamic.rs:
crates/layout/src/heuristic.rs:
crates/layout/src/hyperplane.rs:
crates/layout/src/locality.rs:
crates/layout/src/quality.rs:
crates/layout/src/weights.rs:
