/root/repo/target/debug/deps/mlo_ir-fa9beee968436a53.d: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs

/root/repo/target/debug/deps/libmlo_ir-fa9beee968436a53.rlib: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs

/root/repo/target/debug/deps/libmlo_ir-fa9beee968436a53.rmeta: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs

crates/ir/src/lib.rs:
crates/ir/src/access.rs:
crates/ir/src/array.rs:
crates/ir/src/builder.rs:
crates/ir/src/cost.rs:
crates/ir/src/dependence.rs:
crates/ir/src/ids.rs:
crates/ir/src/iteration.rs:
crates/ir/src/nest.rs:
crates/ir/src/program.rs:
crates/ir/src/reference.rs:
crates/ir/src/transform.rs:
