/root/repo/target/debug/deps/table3-d74631d6d9d73912.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-d74631d6d9d73912: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
