/root/repo/target/debug/deps/figure3-5fabad4972a4ab7d.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-5fabad4972a4ab7d: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
