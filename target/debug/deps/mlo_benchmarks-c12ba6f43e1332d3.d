/root/repo/target/debug/deps/mlo_benchmarks-c12ba6f43e1332d3.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_benchmarks-c12ba6f43e1332d3.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs Cargo.toml

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/generators.rs:
crates/benchmarks/src/random.rs:
crates/benchmarks/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
