/root/repo/target/debug/deps/weighted_ext-bb7cd869be026818.d: crates/bench/src/bin/weighted_ext.rs

/root/repo/target/debug/deps/weighted_ext-bb7cd869be026818: crates/bench/src/bin/weighted_ext.rs

crates/bench/src/bin/weighted_ext.rs:
