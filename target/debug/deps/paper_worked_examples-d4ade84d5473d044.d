/root/repo/target/debug/deps/paper_worked_examples-d4ade84d5473d044.d: crates/layout/tests/paper_worked_examples.rs

/root/repo/target/debug/deps/libpaper_worked_examples-d4ade84d5473d044.rmeta: crates/layout/tests/paper_worked_examples.rs

crates/layout/tests/paper_worked_examples.rs:
