/root/repo/target/debug/deps/weighted_ext-b54f416de7867b23.d: crates/bench/src/bin/weighted_ext.rs

/root/repo/target/debug/deps/weighted_ext-b54f416de7867b23: crates/bench/src/bin/weighted_ext.rs

crates/bench/src/bin/weighted_ext.rs:
