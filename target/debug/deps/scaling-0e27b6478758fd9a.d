/root/repo/target/debug/deps/scaling-0e27b6478758fd9a.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-0e27b6478758fd9a.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
