/root/repo/target/debug/deps/layout_roundtrip-5188613c55c9bb5f.d: tests/layout_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/liblayout_roundtrip-5188613c55c9bb5f.rmeta: tests/layout_roundtrip.rs Cargo.toml

tests/layout_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
