/root/repo/target/debug/deps/cache_microbench-be1bf9ccb40958db.d: crates/bench/benches/cache_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libcache_microbench-be1bf9ccb40958db.rmeta: crates/bench/benches/cache_microbench.rs Cargo.toml

crates/bench/benches/cache_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
