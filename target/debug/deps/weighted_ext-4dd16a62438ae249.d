/root/repo/target/debug/deps/weighted_ext-4dd16a62438ae249.d: crates/bench/src/bin/weighted_ext.rs

/root/repo/target/debug/deps/libweighted_ext-4dd16a62438ae249.rmeta: crates/bench/src/bin/weighted_ext.rs

crates/bench/src/bin/weighted_ext.rs:
