/root/repo/target/debug/deps/table3_execution_time-a2b5c8a1cb07f664.d: crates/bench/benches/table3_execution_time.rs

/root/repo/target/debug/deps/table3_execution_time-a2b5c8a1cb07f664: crates/bench/benches/table3_execution_time.rs

crates/bench/benches/table3_execution_time.rs:
