/root/repo/target/debug/deps/locality_scenarios-c3e054a05c763e3b.d: crates/cachesim/tests/locality_scenarios.rs

/root/repo/target/debug/deps/liblocality_scenarios-c3e054a05c763e3b.rmeta: crates/cachesim/tests/locality_scenarios.rs

crates/cachesim/tests/locality_scenarios.rs:
