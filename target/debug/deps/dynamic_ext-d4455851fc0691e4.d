/root/repo/target/debug/deps/dynamic_ext-d4455851fc0691e4.d: crates/bench/src/bin/dynamic_ext.rs

/root/repo/target/debug/deps/libdynamic_ext-d4455851fc0691e4.rmeta: crates/bench/src/bin/dynamic_ext.rs

crates/bench/src/bin/dynamic_ext.rs:
