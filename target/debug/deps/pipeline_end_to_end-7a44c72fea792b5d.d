/root/repo/target/debug/deps/pipeline_end_to_end-7a44c72fea792b5d.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-7a44c72fea792b5d: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
