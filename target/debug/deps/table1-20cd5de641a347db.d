/root/repo/target/debug/deps/table1-20cd5de641a347db.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-20cd5de641a347db: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
