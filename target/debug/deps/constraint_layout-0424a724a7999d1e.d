/root/repo/target/debug/deps/constraint_layout-0424a724a7999d1e.d: src/lib.rs

/root/repo/target/debug/deps/libconstraint_layout-0424a724a7999d1e.rmeta: src/lib.rs

src/lib.rs:
