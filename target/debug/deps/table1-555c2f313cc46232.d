/root/repo/target/debug/deps/table1-555c2f313cc46232.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-555c2f313cc46232.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
