/root/repo/target/debug/deps/search_properties-29f26d804f526d80.d: crates/csp/tests/search_properties.rs

/root/repo/target/debug/deps/libsearch_properties-29f26d804f526d80.rmeta: crates/csp/tests/search_properties.rs

crates/csp/tests/search_properties.rs:
