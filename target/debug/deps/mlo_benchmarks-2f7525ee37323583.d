/root/repo/target/debug/deps/mlo_benchmarks-2f7525ee37323583.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libmlo_benchmarks-2f7525ee37323583.rlib: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libmlo_benchmarks-2f7525ee37323583.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/generators.rs:
crates/benchmarks/src/random.rs:
crates/benchmarks/src/suite.rs:
