/root/repo/target/debug/deps/mlo_cachesim-11d46c048e234192.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/mlo_cachesim-11d46c048e234192: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/config.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/simulator.rs:
crates/cachesim/src/stats.rs:
crates/cachesim/src/trace.rs:
