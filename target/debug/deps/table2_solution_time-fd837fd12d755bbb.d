/root/repo/target/debug/deps/table2_solution_time-fd837fd12d755bbb.d: crates/bench/benches/table2_solution_time.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_solution_time-fd837fd12d755bbb.rmeta: crates/bench/benches/table2_solution_time.rs Cargo.toml

crates/bench/benches/table2_solution_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
