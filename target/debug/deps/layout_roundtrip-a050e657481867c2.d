/root/repo/target/debug/deps/layout_roundtrip-a050e657481867c2.d: tests/layout_roundtrip.rs

/root/repo/target/debug/deps/liblayout_roundtrip-a050e657481867c2.rmeta: tests/layout_roundtrip.rs

tests/layout_roundtrip.rs:
