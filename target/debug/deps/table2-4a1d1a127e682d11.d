/root/repo/target/debug/deps/table2-4a1d1a127e682d11.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-4a1d1a127e682d11.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
