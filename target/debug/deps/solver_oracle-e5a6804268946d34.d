/root/repo/target/debug/deps/solver_oracle-e5a6804268946d34.d: tests/solver_oracle.rs

/root/repo/target/debug/deps/libsolver_oracle-e5a6804268946d34.rmeta: tests/solver_oracle.rs

tests/solver_oracle.rs:
