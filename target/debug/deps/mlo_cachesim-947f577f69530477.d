/root/repo/target/debug/deps/mlo_cachesim-947f577f69530477.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/libmlo_cachesim-947f577f69530477.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/config.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/simulator.rs:
crates/cachesim/src/stats.rs:
crates/cachesim/src/trace.rs:
