/root/repo/target/debug/deps/locality_scenarios-ebc91dd40bd060a5.d: crates/cachesim/tests/locality_scenarios.rs

/root/repo/target/debug/deps/locality_scenarios-ebc91dd40bd060a5: crates/cachesim/tests/locality_scenarios.rs

crates/cachesim/tests/locality_scenarios.rs:
