/root/repo/target/debug/deps/mlo_core-c3150f3ea0043a24.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/experiments.rs crates/core/src/optimizer.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/strategy.rs

/root/repo/target/debug/deps/libmlo_core-c3150f3ea0043a24.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/experiments.rs crates/core/src/optimizer.rs crates/core/src/prelude.rs crates/core/src/report.rs crates/core/src/request.rs crates/core/src/strategy.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/experiments.rs:
crates/core/src/optimizer.rs:
crates/core/src/prelude.rs:
crates/core/src/report.rs:
crates/core/src/request.rs:
crates/core/src/strategy.rs:
