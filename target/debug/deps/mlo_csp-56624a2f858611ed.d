/root/repo/target/debug/deps/mlo_csp-56624a2f858611ed.d: crates/csp/src/lib.rs crates/csp/src/analysis.rs crates/csp/src/assignment.rs crates/csp/src/constraint.rs crates/csp/src/domain.rs crates/csp/src/network.rs crates/csp/src/random.rs crates/csp/src/solver/mod.rs crates/csp/src/solver/ac3.rs crates/csp/src/solver/engine.rs crates/csp/src/solver/enumerate.rs crates/csp/src/solver/local.rs crates/csp/src/solver/ordering.rs crates/csp/src/weighted.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_csp-56624a2f858611ed.rmeta: crates/csp/src/lib.rs crates/csp/src/analysis.rs crates/csp/src/assignment.rs crates/csp/src/constraint.rs crates/csp/src/domain.rs crates/csp/src/network.rs crates/csp/src/random.rs crates/csp/src/solver/mod.rs crates/csp/src/solver/ac3.rs crates/csp/src/solver/engine.rs crates/csp/src/solver/enumerate.rs crates/csp/src/solver/local.rs crates/csp/src/solver/ordering.rs crates/csp/src/weighted.rs Cargo.toml

crates/csp/src/lib.rs:
crates/csp/src/analysis.rs:
crates/csp/src/assignment.rs:
crates/csp/src/constraint.rs:
crates/csp/src/domain.rs:
crates/csp/src/network.rs:
crates/csp/src/random.rs:
crates/csp/src/solver/mod.rs:
crates/csp/src/solver/ac3.rs:
crates/csp/src/solver/engine.rs:
crates/csp/src/solver/enumerate.rs:
crates/csp/src/solver/local.rs:
crates/csp/src/solver/ordering.rs:
crates/csp/src/weighted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
