/root/repo/target/debug/deps/figure3-3b99073019f9996f.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/libfigure3-3b99073019f9996f.rmeta: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
