/root/repo/target/debug/deps/constraint_layout-f0ca35e66a7f8b47.d: src/lib.rs

/root/repo/target/debug/deps/constraint_layout-f0ca35e66a7f8b47: src/lib.rs

src/lib.rs:
