/root/repo/target/debug/deps/mlo_bench-a4b513149981e0f9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mlo_bench-a4b513149981e0f9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
