/root/repo/target/debug/deps/constraint_layout-48932e351222353b.d: src/lib.rs

/root/repo/target/debug/deps/libconstraint_layout-48932e351222353b.rmeta: src/lib.rs

src/lib.rs:
