/root/repo/target/debug/deps/scaling-d801e3fe8a454f31.d: crates/bench/benches/scaling.rs

/root/repo/target/debug/deps/libscaling-d801e3fe8a454f31.rmeta: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
