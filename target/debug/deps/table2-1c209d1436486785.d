/root/repo/target/debug/deps/table2-1c209d1436486785.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-1c209d1436486785: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
