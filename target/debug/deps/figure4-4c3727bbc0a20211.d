/root/repo/target/debug/deps/figure4-4c3727bbc0a20211.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-4c3727bbc0a20211: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
