/root/repo/target/debug/deps/dynamic_ext-6b21699ff5b4fe15.d: crates/bench/src/bin/dynamic_ext.rs

/root/repo/target/debug/deps/dynamic_ext-6b21699ff5b4fe15: crates/bench/src/bin/dynamic_ext.rs

crates/bench/src/bin/dynamic_ext.rs:
