/root/repo/target/debug/deps/figure4_breakdown-7aabde9711dbd48f.d: crates/bench/benches/figure4_breakdown.rs

/root/repo/target/debug/deps/libfigure4_breakdown-7aabde9711dbd48f.rmeta: crates/bench/benches/figure4_breakdown.rs

crates/bench/benches/figure4_breakdown.rs:
