/root/repo/target/debug/deps/constraint_layout-8bc1ff9902478b5f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconstraint_layout-8bc1ff9902478b5f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
