/root/repo/target/debug/deps/mlo_benchmarks-2dd0de15068d8fcc.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/mlo_benchmarks-2dd0de15068d8fcc: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/generators.rs:
crates/benchmarks/src/random.rs:
crates/benchmarks/src/suite.rs:
