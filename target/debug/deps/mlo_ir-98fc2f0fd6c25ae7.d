/root/repo/target/debug/deps/mlo_ir-98fc2f0fd6c25ae7.d: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs

/root/repo/target/debug/deps/mlo_ir-98fc2f0fd6c25ae7: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs

crates/ir/src/lib.rs:
crates/ir/src/access.rs:
crates/ir/src/array.rs:
crates/ir/src/builder.rs:
crates/ir/src/cost.rs:
crates/ir/src/dependence.rs:
crates/ir/src/ids.rs:
crates/ir/src/iteration.rs:
crates/ir/src/nest.rs:
crates/ir/src/program.rs:
crates/ir/src/reference.rs:
crates/ir/src/transform.rs:
