/root/repo/target/debug/deps/paper_worked_examples-ad3a1b83eb8550bd.d: crates/layout/tests/paper_worked_examples.rs

/root/repo/target/debug/deps/paper_worked_examples-ad3a1b83eb8550bd: crates/layout/tests/paper_worked_examples.rs

crates/layout/tests/paper_worked_examples.rs:
