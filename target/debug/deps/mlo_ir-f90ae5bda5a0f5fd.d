/root/repo/target/debug/deps/mlo_ir-f90ae5bda5a0f5fd.d: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs

/root/repo/target/debug/deps/libmlo_ir-f90ae5bda5a0f5fd.rmeta: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs

crates/ir/src/lib.rs:
crates/ir/src/access.rs:
crates/ir/src/array.rs:
crates/ir/src/builder.rs:
crates/ir/src/cost.rs:
crates/ir/src/dependence.rs:
crates/ir/src/ids.rs:
crates/ir/src/iteration.rs:
crates/ir/src/nest.rs:
crates/ir/src/program.rs:
crates/ir/src/reference.rs:
crates/ir/src/transform.rs:
