/root/repo/target/debug/deps/solver_oracle-44abbdc4a73b4688.d: tests/solver_oracle.rs

/root/repo/target/debug/deps/solver_oracle-44abbdc4a73b4688: tests/solver_oracle.rs

tests/solver_oracle.rs:
