/root/repo/target/debug/deps/figure4-bfe3d3b324ac153c.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-bfe3d3b324ac153c: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
