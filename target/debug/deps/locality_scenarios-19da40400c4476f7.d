/root/repo/target/debug/deps/locality_scenarios-19da40400c4476f7.d: crates/cachesim/tests/locality_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/liblocality_scenarios-19da40400c4476f7.rmeta: crates/cachesim/tests/locality_scenarios.rs Cargo.toml

crates/cachesim/tests/locality_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
