/root/repo/target/debug/deps/scaling-0252f9fb88105d6d.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-0252f9fb88105d6d.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
