/root/repo/target/debug/deps/mlo_linalg-bbdb9f11df36500b.d: crates/linalg/src/lib.rs crates/linalg/src/elimination.rs crates/linalg/src/gcd.rs crates/linalg/src/hermite.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/rational.rs crates/linalg/src/unimodular.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libmlo_linalg-bbdb9f11df36500b.rmeta: crates/linalg/src/lib.rs crates/linalg/src/elimination.rs crates/linalg/src/gcd.rs crates/linalg/src/hermite.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/rational.rs crates/linalg/src/unimodular.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/elimination.rs:
crates/linalg/src/gcd.rs:
crates/linalg/src/hermite.rs:
crates/linalg/src/kernel.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/rational.rs:
crates/linalg/src/unimodular.rs:
crates/linalg/src/vector.rs:
