/root/repo/target/debug/deps/mlo_bench-7ce1aff020ebb9f8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmlo_bench-7ce1aff020ebb9f8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
