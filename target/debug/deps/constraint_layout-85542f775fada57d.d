/root/repo/target/debug/deps/constraint_layout-85542f775fada57d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconstraint_layout-85542f775fada57d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
