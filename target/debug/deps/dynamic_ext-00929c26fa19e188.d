/root/repo/target/debug/deps/dynamic_ext-00929c26fa19e188.d: crates/bench/src/bin/dynamic_ext.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_ext-00929c26fa19e188.rmeta: crates/bench/src/bin/dynamic_ext.rs Cargo.toml

crates/bench/src/bin/dynamic_ext.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
