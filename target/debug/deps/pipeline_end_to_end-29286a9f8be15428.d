/root/repo/target/debug/deps/pipeline_end_to_end-29286a9f8be15428.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/libpipeline_end_to_end-29286a9f8be15428.rmeta: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
