/root/repo/target/debug/deps/constraint_layout-8c2958776420bdd1.d: src/lib.rs

/root/repo/target/debug/deps/constraint_layout-8c2958776420bdd1: src/lib.rs

src/lib.rs:
