/root/repo/target/debug/deps/mlo_bench-56fae53ee66bc16a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmlo_bench-56fae53ee66bc16a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
