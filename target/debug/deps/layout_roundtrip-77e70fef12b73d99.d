/root/repo/target/debug/deps/layout_roundtrip-77e70fef12b73d99.d: tests/layout_roundtrip.rs

/root/repo/target/debug/deps/layout_roundtrip-77e70fef12b73d99: tests/layout_roundtrip.rs

tests/layout_roundtrip.rs:
