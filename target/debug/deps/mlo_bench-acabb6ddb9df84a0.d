/root/repo/target/debug/deps/mlo_bench-acabb6ddb9df84a0.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_bench-acabb6ddb9df84a0.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
