/root/repo/target/debug/deps/search_properties-e7c80d516339f569.d: crates/csp/tests/search_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_properties-e7c80d516339f569.rmeta: crates/csp/tests/search_properties.rs Cargo.toml

crates/csp/tests/search_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
