/root/repo/target/debug/deps/solver_oracle-c3e7a720a8d1709d.d: tests/solver_oracle.rs

/root/repo/target/debug/deps/solver_oracle-c3e7a720a8d1709d: tests/solver_oracle.rs

tests/solver_oracle.rs:
