/root/repo/target/debug/deps/cache_microbench-ab83e8952c69ccb9.d: crates/bench/benches/cache_microbench.rs

/root/repo/target/debug/deps/libcache_microbench-ab83e8952c69ccb9.rmeta: crates/bench/benches/cache_microbench.rs

crates/bench/benches/cache_microbench.rs:
