/root/repo/target/debug/deps/weighted_ext-61495059821fdb5c.d: crates/bench/src/bin/weighted_ext.rs Cargo.toml

/root/repo/target/debug/deps/libweighted_ext-61495059821fdb5c.rmeta: crates/bench/src/bin/weighted_ext.rs Cargo.toml

crates/bench/src/bin/weighted_ext.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
