/root/repo/target/debug/deps/mlo_ir-d62bd4aff1a3e02c.d: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_ir-d62bd4aff1a3e02c.rmeta: crates/ir/src/lib.rs crates/ir/src/access.rs crates/ir/src/array.rs crates/ir/src/builder.rs crates/ir/src/cost.rs crates/ir/src/dependence.rs crates/ir/src/ids.rs crates/ir/src/iteration.rs crates/ir/src/nest.rs crates/ir/src/program.rs crates/ir/src/reference.rs crates/ir/src/transform.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/access.rs:
crates/ir/src/array.rs:
crates/ir/src/builder.rs:
crates/ir/src/cost.rs:
crates/ir/src/dependence.rs:
crates/ir/src/ids.rs:
crates/ir/src/iteration.rs:
crates/ir/src/nest.rs:
crates/ir/src/program.rs:
crates/ir/src/reference.rs:
crates/ir/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
