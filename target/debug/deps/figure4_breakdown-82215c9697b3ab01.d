/root/repo/target/debug/deps/figure4_breakdown-82215c9697b3ab01.d: crates/bench/benches/figure4_breakdown.rs

/root/repo/target/debug/deps/figure4_breakdown-82215c9697b3ab01: crates/bench/benches/figure4_breakdown.rs

crates/bench/benches/figure4_breakdown.rs:
