/root/repo/target/debug/deps/cache_microbench-4c304931952cac8a.d: crates/bench/benches/cache_microbench.rs

/root/repo/target/debug/deps/cache_microbench-4c304931952cac8a: crates/bench/benches/cache_microbench.rs

crates/bench/benches/cache_microbench.rs:
