/root/repo/target/debug/deps/solver_oracle-4c3e6168ef0b0838.d: tests/solver_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_oracle-4c3e6168ef0b0838.rmeta: tests/solver_oracle.rs Cargo.toml

tests/solver_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
