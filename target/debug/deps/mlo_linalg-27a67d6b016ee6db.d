/root/repo/target/debug/deps/mlo_linalg-27a67d6b016ee6db.d: crates/linalg/src/lib.rs crates/linalg/src/elimination.rs crates/linalg/src/gcd.rs crates/linalg/src/hermite.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/rational.rs crates/linalg/src/unimodular.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_linalg-27a67d6b016ee6db.rmeta: crates/linalg/src/lib.rs crates/linalg/src/elimination.rs crates/linalg/src/gcd.rs crates/linalg/src/hermite.rs crates/linalg/src/kernel.rs crates/linalg/src/matrix.rs crates/linalg/src/rational.rs crates/linalg/src/unimodular.rs crates/linalg/src/vector.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/elimination.rs:
crates/linalg/src/gcd.rs:
crates/linalg/src/hermite.rs:
crates/linalg/src/kernel.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/rational.rs:
crates/linalg/src/unimodular.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
