/root/repo/target/debug/deps/figure3-2b33748494f6c971.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/libfigure3-2b33748494f6c971.rmeta: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
