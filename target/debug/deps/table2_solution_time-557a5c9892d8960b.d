/root/repo/target/debug/deps/table2_solution_time-557a5c9892d8960b.d: crates/bench/benches/table2_solution_time.rs

/root/repo/target/debug/deps/table2_solution_time-557a5c9892d8960b: crates/bench/benches/table2_solution_time.rs

crates/bench/benches/table2_solution_time.rs:
