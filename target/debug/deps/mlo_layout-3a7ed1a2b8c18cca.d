/root/repo/target/debug/deps/mlo_layout-3a7ed1a2b8c18cca.d: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_layout-3a7ed1a2b8c18cca.rmeta: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs Cargo.toml

crates/layout/src/lib.rs:
crates/layout/src/apply.rs:
crates/layout/src/candidates.rs:
crates/layout/src/constraints.rs:
crates/layout/src/dynamic.rs:
crates/layout/src/heuristic.rs:
crates/layout/src/hyperplane.rs:
crates/layout/src/locality.rs:
crates/layout/src/quality.rs:
crates/layout/src/weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
