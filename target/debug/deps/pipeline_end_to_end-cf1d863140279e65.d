/root/repo/target/debug/deps/pipeline_end_to_end-cf1d863140279e65.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-cf1d863140279e65: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
