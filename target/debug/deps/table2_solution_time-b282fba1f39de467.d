/root/repo/target/debug/deps/table2_solution_time-b282fba1f39de467.d: crates/bench/benches/table2_solution_time.rs

/root/repo/target/debug/deps/libtable2_solution_time-b282fba1f39de467.rmeta: crates/bench/benches/table2_solution_time.rs

crates/bench/benches/table2_solution_time.rs:
