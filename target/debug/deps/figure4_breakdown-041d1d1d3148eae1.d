/root/repo/target/debug/deps/figure4_breakdown-041d1d1d3148eae1.d: crates/bench/benches/figure4_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4_breakdown-041d1d1d3148eae1.rmeta: crates/bench/benches/figure4_breakdown.rs Cargo.toml

crates/bench/benches/figure4_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
