/root/repo/target/debug/deps/weighted_ext-7620d28d85e37530.d: crates/bench/src/bin/weighted_ext.rs

/root/repo/target/debug/deps/libweighted_ext-7620d28d85e37530.rmeta: crates/bench/src/bin/weighted_ext.rs

crates/bench/src/bin/weighted_ext.rs:
