/root/repo/target/debug/deps/mlo_bench-5e93d058ac09c662.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmlo_bench-5e93d058ac09c662.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmlo_bench-5e93d058ac09c662.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
