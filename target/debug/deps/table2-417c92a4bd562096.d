/root/repo/target/debug/deps/table2-417c92a4bd562096.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-417c92a4bd562096: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
