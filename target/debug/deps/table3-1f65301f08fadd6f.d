/root/repo/target/debug/deps/table3-1f65301f08fadd6f.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-1f65301f08fadd6f.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
