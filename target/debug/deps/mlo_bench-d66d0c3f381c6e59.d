/root/repo/target/debug/deps/mlo_bench-d66d0c3f381c6e59.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_bench-d66d0c3f381c6e59.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
