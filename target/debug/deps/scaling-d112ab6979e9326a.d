/root/repo/target/debug/deps/scaling-d112ab6979e9326a.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-d112ab6979e9326a: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
