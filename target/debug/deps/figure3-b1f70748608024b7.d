/root/repo/target/debug/deps/figure3-b1f70748608024b7.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-b1f70748608024b7: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
