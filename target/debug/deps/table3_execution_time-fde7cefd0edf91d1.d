/root/repo/target/debug/deps/table3_execution_time-fde7cefd0edf91d1.d: crates/bench/benches/table3_execution_time.rs

/root/repo/target/debug/deps/libtable3_execution_time-fde7cefd0edf91d1.rmeta: crates/bench/benches/table3_execution_time.rs

crates/bench/benches/table3_execution_time.rs:
