/root/repo/target/debug/deps/dynamic_ext-82a5d51afb44f44b.d: crates/bench/src/bin/dynamic_ext.rs

/root/repo/target/debug/deps/dynamic_ext-82a5d51afb44f44b: crates/bench/src/bin/dynamic_ext.rs

crates/bench/src/bin/dynamic_ext.rs:
