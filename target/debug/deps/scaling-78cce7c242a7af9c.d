/root/repo/target/debug/deps/scaling-78cce7c242a7af9c.d: crates/bench/benches/scaling.rs

/root/repo/target/debug/deps/scaling-78cce7c242a7af9c: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
