/root/repo/target/debug/deps/table2-b97223c0ae1eeedd.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-b97223c0ae1eeedd.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
