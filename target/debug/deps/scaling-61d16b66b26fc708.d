/root/repo/target/debug/deps/scaling-61d16b66b26fc708.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-61d16b66b26fc708.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
