/root/repo/target/debug/deps/figure4-3b7050d7ac340d35.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/libfigure4-3b7050d7ac340d35.rmeta: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
