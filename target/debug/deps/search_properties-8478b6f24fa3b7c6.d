/root/repo/target/debug/deps/search_properties-8478b6f24fa3b7c6.d: crates/csp/tests/search_properties.rs

/root/repo/target/debug/deps/search_properties-8478b6f24fa3b7c6: crates/csp/tests/search_properties.rs

crates/csp/tests/search_properties.rs:
