/root/repo/target/debug/deps/mlo_benchmarks-46471287443b2506.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libmlo_benchmarks-46471287443b2506.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/generators.rs:
crates/benchmarks/src/random.rs:
crates/benchmarks/src/suite.rs:
