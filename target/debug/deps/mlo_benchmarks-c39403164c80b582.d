/root/repo/target/debug/deps/mlo_benchmarks-c39403164c80b582.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libmlo_benchmarks-c39403164c80b582.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/generators.rs crates/benchmarks/src/random.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/generators.rs:
crates/benchmarks/src/random.rs:
crates/benchmarks/src/suite.rs:
