/root/repo/target/debug/deps/mlo_cachesim-2b5be268096ac388.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/libmlo_cachesim-2b5be268096ac388.rlib: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/libmlo_cachesim-2b5be268096ac388.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/config.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/simulator.rs:
crates/cachesim/src/stats.rs:
crates/cachesim/src/trace.rs:
