/root/repo/target/debug/deps/mlo_layout-33e39bf04a52cbd9.d: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs

/root/repo/target/debug/deps/mlo_layout-33e39bf04a52cbd9: crates/layout/src/lib.rs crates/layout/src/apply.rs crates/layout/src/candidates.rs crates/layout/src/constraints.rs crates/layout/src/dynamic.rs crates/layout/src/heuristic.rs crates/layout/src/hyperplane.rs crates/layout/src/locality.rs crates/layout/src/quality.rs crates/layout/src/weights.rs

crates/layout/src/lib.rs:
crates/layout/src/apply.rs:
crates/layout/src/candidates.rs:
crates/layout/src/constraints.rs:
crates/layout/src/dynamic.rs:
crates/layout/src/heuristic.rs:
crates/layout/src/hyperplane.rs:
crates/layout/src/locality.rs:
crates/layout/src/quality.rs:
crates/layout/src/weights.rs:
