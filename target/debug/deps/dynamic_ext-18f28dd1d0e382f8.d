/root/repo/target/debug/deps/dynamic_ext-18f28dd1d0e382f8.d: crates/bench/src/bin/dynamic_ext.rs

/root/repo/target/debug/deps/libdynamic_ext-18f28dd1d0e382f8.rmeta: crates/bench/src/bin/dynamic_ext.rs

crates/bench/src/bin/dynamic_ext.rs:
