/root/repo/target/debug/deps/mlo_cachesim-55f8d01c959ab123.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmlo_cachesim-55f8d01c959ab123.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/config.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/prefetch.rs crates/cachesim/src/simulator.rs crates/cachesim/src/stats.rs crates/cachesim/src/trace.rs Cargo.toml

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/config.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/prefetch.rs:
crates/cachesim/src/simulator.rs:
crates/cachesim/src/stats.rs:
crates/cachesim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
