/root/repo/target/debug/deps/constraint_layout-871df42aad9576d6.d: src/lib.rs

/root/repo/target/debug/deps/libconstraint_layout-871df42aad9576d6.rlib: src/lib.rs

/root/repo/target/debug/deps/libconstraint_layout-871df42aad9576d6.rmeta: src/lib.rs

src/lib.rs:
