/root/repo/target/debug/deps/table3-391a46424a01d2b2.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-391a46424a01d2b2: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
