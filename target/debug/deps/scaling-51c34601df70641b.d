/root/repo/target/debug/deps/scaling-51c34601df70641b.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-51c34601df70641b: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
