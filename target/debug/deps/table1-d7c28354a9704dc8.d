/root/repo/target/debug/deps/table1-d7c28354a9704dc8.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d7c28354a9704dc8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
