/root/repo/target/debug/deps/scaling-7d536e6aea270f80.d: crates/bench/benches/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-7d536e6aea270f80.rmeta: crates/bench/benches/scaling.rs Cargo.toml

crates/bench/benches/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
