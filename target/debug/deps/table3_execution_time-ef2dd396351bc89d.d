/root/repo/target/debug/deps/table3_execution_time-ef2dd396351bc89d.d: crates/bench/benches/table3_execution_time.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_execution_time-ef2dd396351bc89d.rmeta: crates/bench/benches/table3_execution_time.rs Cargo.toml

crates/bench/benches/table3_execution_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
