/root/repo/target/debug/deps/layout_roundtrip-504e4cf9c46ce370.d: tests/layout_roundtrip.rs

/root/repo/target/debug/deps/layout_roundtrip-504e4cf9c46ce370: tests/layout_roundtrip.rs

tests/layout_roundtrip.rs:
