/root/repo/target/debug/deps/table3-9af08112815abe66.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-9af08112815abe66.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
