/root/repo/target/debug/deps/paper_worked_examples-93ef136219f58eb5.d: crates/layout/tests/paper_worked_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_worked_examples-93ef136219f58eb5.rmeta: crates/layout/tests/paper_worked_examples.rs Cargo.toml

crates/layout/tests/paper_worked_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
