//! `constraint-layout`: the workspace facade crate.
//!
//! This crate re-exports the whole public API of the workspace so that the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) have a single dependency.  Library users normally depend on
//! [`mlo_core`] (and transitively on the substrate crates) directly; see the
//! repository `README.md` for the crate map.
//!
//! ```
//! use constraint_layout::prelude::*;
//!
//! let program = Benchmark::MxM.program();
//! let report = Engine::new()
//!     .optimize(&program, &OptimizeRequest::strategy("heuristic"))
//!     .unwrap();
//! assert!(report.assignment.len() >= program.arrays().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mlo_benchmarks as benchmarks;
pub use mlo_cachesim as cachesim;
pub use mlo_core as core;
pub use mlo_csp as csp;
pub use mlo_ir as ir;
pub use mlo_layout as layout;
pub use mlo_linalg as linalg;

/// One-stop re-exports for examples and quick experiments.
pub mod prelude {
    pub use mlo_core::prelude::*;
}
