//! The `mlo-service` front-end: queued submission, coalescing, streaming
//! incumbents and adaptive strategy dispatch.
//!
//! ```text
//! cargo run --example service_frontend
//! ```

use mlo_benchmarks::Benchmark;
use mlo_core::{Engine, OptimizeRequest};
use mlo_service::{AdaptiveDispatch, MloService, ServiceConfig};

fn main() {
    // A bounded service over one shared session: at most 16 solves queued
    // or running, tenants capped at 4 concurrent solves each.
    let engine = Engine::new();
    let service = MloService::new(
        engine.session(),
        ServiceConfig::new()
            .queue_limit(16)
            .default_tenant_budget(4),
    )
    .with_dispatch(AdaptiveDispatch::seeded());

    // Submission returns immediately; the solve runs on the session's
    // worker pool.  Identical in-flight requests coalesce onto one solve.
    let program = Benchmark::Radar.program();
    let request = OptimizeRequest::strategy("weighted").seed(7);
    let first = service.submit(&program, &request).expect("admitted");
    let duplicate = service.submit(&program, &request).expect("admitted");
    if duplicate.is_coalesced() {
        println!("duplicate coalesced onto the in-flight solve");
    }

    let report = first.wait();
    let report = report.as_ref().as_ref().expect("solve succeeded");
    println!(
        "weighted solve: {} arrays laid out in {:?} ({})",
        report.assignment.len(),
        report.solution_time,
        report.fallback
    );

    // Streaming: watch the branch-and-bound improve its incumbent.
    let streamed = service
        .submit_streaming(&program, &request)
        .expect("admitted");
    let result = streamed.wait();
    let (version, weight) = streamed.watch().latest();
    println!(
        "streamed solve saw {version} incumbent update(s), final weight {weight:?} \
         (ok = {})",
        result.is_ok()
    );

    // Adaptive dispatch: the seeded table picks a strategy per instance
    // from its nearest recorded neighbor — deterministically.
    for benchmark in Benchmark::all() {
        let picked = service
            .pick_strategy(&benchmark.program(), &OptimizeRequest::default())
            .expect("dispatcher attached");
        println!("dispatch pick for {benchmark:?}: {picked}");
    }
    let adaptive = service
        .submit_adaptive(&program, &OptimizeRequest::default())
        .expect("admitted");
    let adaptive_report = adaptive.wait();
    let adaptive_report = adaptive_report.as_ref().as_ref().expect("solve succeeded");
    println!(
        "adaptive solve ran `{}` and recorded {} new dispatch row(s)",
        adaptive_report.strategy,
        service
            .dispatch()
            .map(AdaptiveDispatch::recorded_rows)
            .unwrap_or(0)
    );

    let stats = service.stats();
    println!(
        "service stats: {} submitted, {} coalesced, {} shed, {} completed",
        stats.submitted, stats.coalesced, stats.shed, stats.completed
    );
}
