//! Dynamic memory layouts (the paper's second future direction).
//!
//! A two-phase image-processing program first sweeps its working array along
//! rows, then along columns, and dependences pin both phases to their
//! original loop order.  No single (static) layout serves both phases, but a
//! per-segment *dynamic* layout — row-major for the first phase, column-major
//! for the second, with one re-layout copy in between — does.  This example
//! computes the optimal layout schedule with the shortest-path formulation
//! of `mlo_layout::dynamic` and then validates the decision on the cache
//! simulator.
//!
//! ```text
//! cargo run --example dynamic_layouts
//! ```

use constraint_layout::prelude::*;
use mlo_layout::dynamic::{dynamic_plan, DynamicOptions, Segmentation};

/// Builds the two-phase program: `phases` nests sweeping `A` row-wise, then
/// `phases` nests sweeping it column-wise, each pinned to its original loop
/// order by a dependence with distance `(1, -1)`.
fn two_phase_program(n: i64, phases: usize) -> Program {
    let mut b = ProgramBuilder::new("two_phase");
    let a = b.array("A", vec![n, n], 4);
    for k in 0..phases {
        b.nest(
            format!("row_phase{k}"),
            vec![("i", 0, n), ("j", 0, n)],
            |nest| {
                nest.read(
                    a,
                    AccessBuilder::new(2, 2)
                        .row(0, [1, 0])
                        .row(1, [0, 1])
                        .build(),
                );
                nest.write(
                    a,
                    AccessBuilder::new(2, 2)
                        .row(0, [1, 0])
                        .row(1, [0, 1])
                        .build(),
                );
                nest.read(
                    a,
                    AccessBuilder::new(2, 2)
                        .row(0, [1, 0])
                        .row(1, [0, 1])
                        .offset(0, -1)
                        .offset(1, 1)
                        .build(),
                );
                nest.compute(4);
            },
        );
    }
    for k in 0..phases {
        b.nest(
            format!("col_phase{k}"),
            vec![("i", 0, n), ("j", 0, n)],
            |nest| {
                nest.read(
                    a,
                    AccessBuilder::new(2, 2)
                        .row(0, [0, 1])
                        .row(1, [1, 0])
                        .build(),
                );
                nest.write(
                    a,
                    AccessBuilder::new(2, 2)
                        .row(0, [0, 1])
                        .row(1, [1, 0])
                        .build(),
                );
                nest.read(
                    a,
                    AccessBuilder::new(2, 2)
                        .row(0, [0, 1])
                        .row(1, [1, 0])
                        .offset(0, 1)
                        .offset(1, -1)
                        .build(),
                );
                nest.compute(4);
            },
        );
    }
    b.build()
}

fn main() {
    let n = 512;
    let phases = 3;
    let program = two_phase_program(n, phases);
    println!(
        "Program: {} nests over one {n}x{n} array ({} KB)\n",
        program.nests().len(),
        program.total_data_kb()
    );

    // ------------------------------------------------------------------
    // 1. The static optimizer must compromise: whichever layout it picks,
    //    one phase traverses the array against the layout.
    // ------------------------------------------------------------------
    let static_outcome = Engine::new()
        .optimize(&program, &OptimizeRequest::strategy("enhanced"))
        .expect("the two-phase program optimizes");
    println!(
        "Static constraint-network layout for A: {}",
        static_outcome
            .assignment
            .layout_of(ArrayId::new(0))
            .expect("A has a layout")
    );

    // ------------------------------------------------------------------
    // 2. The dynamic planner splits the nest sequence into segments and
    //    lets the layout change when the copy pays for itself.
    // ------------------------------------------------------------------
    let segmentation = Segmentation::by_window(&program, phases);
    let plan = dynamic_plan(&program, &segmentation, &DynamicOptions::default());
    println!("\n{plan}");
    let schedule = plan.schedule_of(ArrayId::new(0)).expect("A is scheduled");
    for (s, layout) in schedule.per_segment.iter().enumerate() {
        println!("  segment {s}: A uses {layout}");
    }

    // ------------------------------------------------------------------
    // 3. Validate on the cache simulator: simulate each segment under its
    //    per-segment layouts and compare with the best static assignment.
    //    The copy cost is charged as one read and one write per element at
    //    the memory latency.
    // ------------------------------------------------------------------
    let simulator = Simulator::new(MachineConfig::date05()).trace_options(TraceOptions {
        max_trip_per_loop: 512,
        array_alignment: 64,
    });
    let static_report = simulator
        .simulate(&program, &static_outcome.assignment)
        .expect("static layouts simulate");

    let mut dynamic_cycles = 0u64;
    for (s, _) in segmentation.segments().iter().enumerate() {
        let assignment = plan.assignment_for_segment(s);
        // Simulate only this segment's nests by building a sub-program view:
        // here all nests share the array, so we simulate the whole program
        // under the segment's assignment and take the per-nest cycles of the
        // segment's nests.
        let report = simulator
            .simulate(&program, &assignment)
            .expect("segment layouts simulate");
        for &(nest, cycles) in &report.nest_cycles {
            if segmentation.segments()[s].contains(&nest) {
                dynamic_cycles += cycles;
            }
        }
    }
    // Re-layout copies between segments.
    let element_count = program.arrays()[0].element_count() as u64;
    let copies = schedule.switch_points.len() as u64;
    let copy_cycles = copies * element_count * 2 * MachineConfig::date05().memory_latency / 8;
    dynamic_cycles += copy_cycles;

    println!("\nSimulated cycles:");
    println!("  best static layout : {:>12}", static_report.total_cycles);
    println!(
        "  dynamic layouts    : {:>12} (including {} re-layout copies, {} cycles)",
        dynamic_cycles, copies, copy_cycles
    );
    let gain = 100.0 * (static_report.total_cycles as f64 - dynamic_cycles as f64)
        / static_report.total_cycles as f64;
    println!("  dynamic vs static  : {gain:+.1}%");
}
