//! Weighted constraints (the paper's first future direction).
//!
//! When a constraint network has several solutions, the base and enhanced
//! schemes return an arbitrary one (the paper observes exactly this on
//! Med-Im04, Radar and Track).  Weighting each allowed layout pair by the
//! cost of the nest that asked for it lets the optimizer *rank* solutions:
//! the branch-and-bound search then favours the layout combinations wanted
//! by the most expensive nests.
//!
//! This example constructs a program where an unweighted solver may happily
//! satisfy a cheap nest at the expense of a hot one, shows that the weighted
//! scheme picks the hot nest's preference, and quantifies the difference on
//! the cache simulator.
//!
//! ```text
//! cargo run --example weighted_priorities
//! ```

use constraint_layout::prelude::*;
use mlo_layout::quality::assignment_score;
use mlo_layout::weights::{weighted_assignment, WeightOptions};

/// A hot nest streams `X` and `Y` together row-wise; a cold nest reads `X`
/// transposed against `Y`.  Both nests are free to interchange, so the
/// network has several consistent layout combinations; only the weighted
/// solver is forced to side with the hot nest.
fn build_program(hot: i64, cold: i64) -> Program {
    let mut b = ProgramBuilder::new("weighted_priorities");
    let x = b.array("X", vec![512, 512], 4);
    let y = b.array("Y", vec![512, 512], 4);
    b.nest("hot", vec![("i", 0, hot), ("j", 0, hot)], |nest| {
        nest.read(
            x,
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
        );
        nest.read(
            y,
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
        );
        nest.compute(4);
    });
    b.nest("cold", vec![("i", 0, cold), ("j", 0, cold)], |nest| {
        nest.read(
            x,
            AccessBuilder::new(2, 2)
                .row(0, [0, 1])
                .row(1, [1, 0])
                .build(),
        );
        nest.read(
            y,
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
        );
        nest.compute(4);
    });
    b.build()
}

fn main() {
    let program = build_program(512, 64);
    println!("Two-nest program: a hot 512x512 nest and a cold 64x64 nest share X and Y.\n");

    // ------------------------------------------------------------------
    // 1. Unweighted constraint network: any consistent combination will do.
    // ------------------------------------------------------------------
    let session = Engine::new().session();
    let enhanced = session
        .optimize(&program, &OptimizeRequest::strategy("enhanced"))
        .expect("the two-nest network is satisfiable");
    println!("Enhanced (unweighted) solution:");
    println!("  {}", enhanced.assignment);

    // ------------------------------------------------------------------
    // 2. Weighted network: contributions are weighted by nest cost, with a
    //    bonus for combinations achievable without restructuring.
    // ------------------------------------------------------------------
    let weighted = weighted_assignment(
        &program,
        &CandidateOptions::default(),
        &WeightOptions::default(),
    );
    println!("\nWeighted (branch-and-bound) solution:");
    println!("  {}", weighted.assignment);
    println!(
        "  total pair weight {:.0}, satisfiable: {}",
        weighted.weight, weighted.satisfiable
    );

    // The engine exposes the same thing as the "weighted" strategy.
    let via_strategy = session
        .optimize(&program, &OptimizeRequest::strategy("weighted"))
        .expect("weighted request succeeds");
    assert_eq!(via_strategy.assignment, weighted.assignment);

    // ------------------------------------------------------------------
    // 3. Compare the static locality scores and the simulated cycles.
    // ------------------------------------------------------------------
    let mut table = TextTable::new(vec!["Assignment", "Static score", "Simulated cycles"]);
    let simulator = Simulator::new(MachineConfig::date05()).trace_options(TraceOptions {
        max_trip_per_loop: 512,
        array_alignment: 64,
    });
    for (name, assignment) in [
        ("enhanced", &enhanced.assignment),
        ("weighted", &weighted.assignment),
    ] {
        let report = simulator
            .simulate(&program, assignment)
            .expect("assignments simulate");
        table.row(vec![
            name.into(),
            assignment_score(&program, assignment).to_string(),
            report.total_cycles.to_string(),
        ]);
    }
    println!("\n{table}");
    println!(
        "Both assignments satisfy the hard network; the weighted one is\n\
         guaranteed to favour the hot nest, which is what the paper's\n\
         future-work weighting is for."
    );
}
