//! Domain scenario 1: optimizing an image-reconstruction pipeline.
//!
//! Builds the Med-Im04-style benchmark (a long chain of filtering /
//! backprojection stages over 64×64 images plus shared weight tables), runs
//! all three layout-determination schemes and compares them on the paper's
//! machine model — the per-application view behind Tables 2 and 3.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use constraint_layout::prelude::*;
use mlo_cachesim::TraceOptions;

fn main() {
    let benchmark = Benchmark::MedIm04;
    let program = benchmark.program();
    println!(
        "{}: {} arrays, {} nests, {:.1} KB of data",
        program.name(),
        program.arrays().len(),
        program.nests().len(),
        program.total_data_kb()
    );

    let simulator = Simulator::new(MachineConfig::date05()).trace_options(TraceOptions {
        max_trip_per_loop: 64,
        array_alignment: 64,
    });
    let original = simulator
        .clone()
        .without_restructuring()
        .simulate(&program, &LayoutAssignment::all_row_major(&program))
        .expect("baseline simulates");
    println!(
        "\noriginal code (row-major, original loop order): {} cycles, {:.1}% L1 misses",
        original.total_cycles,
        original.l1_data.miss_rate() * 100.0
    );

    // One session: the four strategies share the candidate enumeration and
    // the constraint network of the pipeline.
    let session = Engine::new().session();
    for strategy in ["heuristic", "base", "enhanced", "forward-checking"] {
        let outcome = session
            .optimize(
                &program,
                &OptimizeRequest::strategy(strategy).candidates(benchmark.candidate_options()),
            )
            .expect("Med-Im04 is satisfiable; no request errors");
        let report = simulator
            .simulate(&program, &outcome.assignment)
            .expect("optimized layouts simulate");
        let nodes = outcome
            .search_stats
            .map(|s| format!("{} nodes, {} backjumps", s.nodes_visited, s.backjumps))
            .unwrap_or_else(|| "no search".to_string());
        println!(
            "{:<17} solved in {:>10.2?} ({:<28}) -> {:>12} cycles ({:.1}% better than original)",
            outcome.strategy,
            outcome.solution_time,
            nodes,
            report.total_cycles,
            report.improvement_over(&original)
        );
    }

    println!(
        "\nThe constraint-network schemes resolve the layout of the shared weight\n\
         tables globally, which the greedy per-nest heuristic gets wrong — that is\n\
         the extra ~15% the paper's Table 3 attributes to the network-based search."
    );
}
