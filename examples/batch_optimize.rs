//! Batch optimization with the session-based engine API.
//!
//! One [`Session`] runs a whole matrix of (benchmark × strategy) requests:
//! candidate sets and constraint networks are built once per benchmark and
//! shared, the requests fan out across worker threads, and every cell comes
//! back as an independent typed result — a report with its
//! [`Fallback`] reason, or an [`OptimizeError`] for the requests that asked
//! to fail instead of falling back.
//!
//! Programs are submitted as `Arc` handles through
//! [`Session::optimize_many_shared`], the zero-copy batch entry point:
//! every job and every portfolio member borrows the same shared storage —
//! nothing is cloned on the way to the workers.
//!
//! ```text
//! cargo run --release --example batch_optimize
//! ```

use constraint_layout::prelude::*;
use std::sync::Arc;

fn main() {
    let engine = Engine::new();
    let session = engine.session();

    // Three benchmarks × three strategies, one batch.
    let benchmarks = [Benchmark::MxM, Benchmark::MedIm04, Benchmark::Track];
    let strategies = ["heuristic", "enhanced", "local-search"];
    let programs: Vec<Arc<Program>> = benchmarks.iter().map(|b| Arc::new(b.program())).collect();

    let mut jobs: Vec<(Arc<Program>, OptimizeRequest)> = Vec::new();
    for (benchmark, program) in benchmarks.iter().zip(&programs) {
        for strategy in strategies {
            jobs.push((
                Arc::clone(program),
                OptimizeRequest::strategy(strategy)
                    .candidates(benchmark.candidate_options())
                    .seed(0xBA7C4),
            ));
        }
    }

    println!(
        "Submitting {} requests ({} benchmarks x {} strategies) through one session...\n",
        jobs.len(),
        benchmarks.len(),
        strategies.len()
    );
    let results = session.optimize_many_shared(&jobs);

    let mut table = TextTable::new(vec![
        "Benchmark",
        "Strategy",
        "Satisfiable",
        "Fallback",
        "Nodes",
        "Solution time",
    ]);
    for ((benchmark, _), ((_, request), result)) in benchmarks
        .iter()
        .flat_map(|b| strategies.iter().map(move |s| (b, *s)))
        .zip(jobs.iter().zip(&results))
    {
        match result {
            Ok(report) => table.row(vec![
                benchmark.name().into(),
                request.strategy.to_string(),
                report
                    .satisfiable
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "unproven".into()),
                report.fallback.to_string(),
                report
                    .search_stats
                    .map(|s| s.nodes_visited.to_string())
                    .unwrap_or_else(|| "-".into()),
                format!("{:.2?}", report.solution_time),
            ]),
            Err(error) => table.row(vec![
                benchmark.name().into(),
                request.strategy.to_string(),
                "error".into(),
                error.to_string(),
                "-".into(),
                "-".into(),
            ]),
        };
    }
    println!("{table}");
    println!(
        "networks prepared: {} (one per benchmark — the batch shared them)\n",
        session.prepared_programs()
    );

    // The same failure, reported two ways: MxM's hard network is
    // unsatisfiable, so the default policy falls back to the heuristic
    // (recorded in the report above), while `fail_instead_of_fallback`
    // turns it into a typed error a batch driver can route.
    let strict = OptimizeRequest::strategy("enhanced")
        .candidates(Benchmark::MxM.candidate_options())
        .fail_instead_of_fallback();
    match session.optimize(&programs[0], &strict) {
        Ok(_) => unreachable!("MxM's network has no solution"),
        Err(error) => println!("strict MxM request failed as requested: {error}"),
    }

    // Per-request budgets compose the same way: an impossible deadline
    // yields a typed budget error instead of a silent flag.
    let impossible = OptimizeRequest::strategy("base")
        .candidates(Benchmark::Track.candidate_options())
        .with_budget(mlo_core::SearchBudget::new().deadline(std::time::Duration::ZERO))
        .fail_instead_of_fallback();
    match session.optimize(&programs[2], &impossible) {
        Ok(_) => unreachable!("a zero deadline cannot finish"),
        Err(error) => println!("zero-deadline request failed as requested: {error}"),
    }
}
