//! Quick start: the paper's running example end to end.
//!
//! Reproduces Figure 1 (the hyperplane view of the canonical layouts),
//! Figure 2 (deriving the preferred layouts of `Q1[i1+i2][i2]` and
//! `Q2[i1+i2][i1]`), the Section 3 constraint network and its solution, and
//! finally measures the effect on the simulated cache hierarchy.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use constraint_layout::prelude::*;
use mlo_layout::locality::preferred_layout_for_array;
use mlo_layout::quality::{assignment_score, ideal_score};

fn main() {
    // ------------------------------------------------------------------
    // Figure 1: hyperplane vectors of the four canonical 2-D layouts.
    // ------------------------------------------------------------------
    println!("== Figure 1: hyperplane-based layouts of a 2-D array ==");
    for (name, layout) in [
        ("row-major", Layout::row_major(2)),
        ("column-major", Layout::column_major(2)),
        ("diagonal", Layout::diagonal()),
        ("anti-diagonal", Layout::anti_diagonal()),
    ] {
        let h = &layout.hyperplanes()[0];
        println!(
            "  {name:<13} {h}   (elements (5,3) and (7,5) on the same hyperplane: {})",
            h.same_hyperplane(&[5, 3], &[7, 5])
        );
    }

    // ------------------------------------------------------------------
    // Figure 2: the example nest and its preferred layouts.
    // ------------------------------------------------------------------
    println!("\n== Figure 2: for(i1) for(i2) ... Q1[i1+i2][i2] ... Q2[i1+i2][i1] ==");
    let n = 128;
    let mut builder = ProgramBuilder::new("figure2");
    let q1 = builder.array("Q1", vec![2 * n, n], 4);
    let q2 = builder.array("Q2", vec![2 * n, n], 4);
    builder.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
        nest.read(
            q1,
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [0, 1])
                .build(),
        );
        nest.read(
            q2,
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [1, 0])
                .build(),
        );
    });
    let program = builder.build();
    let nest = &program.nests()[0];
    for (array, name) in [(q1, "Q1"), (q2, "Q2")] {
        let original = preferred_layout_for_array(nest, array, &LoopTransform::identity(2));
        let interchanged =
            preferred_layout_for_array(nest, array, &LoopTransform::permutation(&[1, 0]));
        println!(
            "  {name}: preferred layout {} under the original order, {} after interchange",
            original.expect("2-D access has a preference"),
            interchanged.expect("2-D access has a preference"),
        );
    }

    // ------------------------------------------------------------------
    // Section 3/4: build the constraint network and solve it.
    // ------------------------------------------------------------------
    println!("\n== Constraint network and solution ==");
    let session = Engine::new().session();
    let request = OptimizeRequest::strategy("enhanced");
    let prepared = session.prepared(&program, &request.candidates);
    let network = prepared.network(&program);
    println!(
        "  variables: {}, constraints: {}, total domain size: {}",
        network.network().variable_count(),
        network.network().constraint_count(),
        network.total_domain_size()
    );
    let report = session
        .optimize(&program, &request)
        .expect("figure 2 is satisfiable");
    println!(
        "  solved with the {} strategy in {:?} ({} nodes visited)",
        report.strategy,
        report.solution_time,
        report.search_stats.map(|s| s.nodes_visited).unwrap_or(0)
    );
    let outcome = &report;
    for array in program.arrays() {
        println!(
            "  {} -> {}",
            array.name(),
            outcome
                .assignment
                .layout_of(array.id())
                .expect("complete assignment")
        );
    }
    println!(
        "  static locality score: {} / {}",
        assignment_score(&program, &outcome.assignment),
        ideal_score(&program)
    );

    // ------------------------------------------------------------------
    // Section 5: what the layouts are worth on the simulated machine.
    // ------------------------------------------------------------------
    println!("\n== Simulated cache behaviour (paper's machine model) ==");
    let simulator = Simulator::new(MachineConfig::date05());
    let original = simulator
        .clone()
        .without_restructuring()
        .simulate(&program, &LayoutAssignment::all_row_major(&program))
        .expect("row-major baseline simulates");
    let optimized = simulator
        .simulate(&program, &outcome.assignment)
        .expect("optimized layouts simulate");
    println!(
        "  original  : {:>12} cycles, L1 miss rate {:.1}%",
        original.total_cycles,
        original.l1_data.miss_rate() * 100.0
    );
    println!(
        "  optimized : {:>12} cycles, L1 miss rate {:.1}%",
        optimized.total_cycles,
        optimized.l1_data.miss_rate() * 100.0
    );
    println!(
        "  improvement: {:.1}%",
        optimized.improvement_over(&original)
    );
}
