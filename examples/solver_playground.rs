//! Domain scenario 3: using the constraint-network solver directly.
//!
//! The `mlo-csp` crate is a self-contained binary-CSP library; this example
//! recreates the exact four-array network of the paper's Section 3, solves
//! it with every scheme, shows the search statistics, and then demonstrates
//! the weighted extension picking a preferred solution among several.
//!
//! ```text
//! cargo run --example solver_playground
//! ```

use constraint_layout::prelude::*;
use mlo_csp::{BranchAndBound, ConstraintNetwork, WeightedNetwork};

fn paper_network() -> (ConstraintNetwork<(i64, i64)>, [mlo_csp::VarId; 4]) {
    let mut net = ConstraintNetwork::new();
    let q1 = net.add_variable("Q1", vec![(1, 0), (0, 1), (1, 1)]);
    let q2 = net.add_variable("Q2", vec![(1, -1), (1, 1)]);
    let q3 = net.add_variable("Q3", vec![(0, 1), (1, 1), (1, 2)]);
    let q4 = net.add_variable("Q4", vec![(1, 0), (0, 1), (1, 1)]);
    net.add_constraint(q1, q2, vec![((1, 0), (1, 1)), ((0, 1), (1, -1))])
        .unwrap();
    net.add_constraint(
        q1,
        q3,
        vec![((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))],
    )
    .unwrap();
    net.add_constraint(q1, q4, vec![((1, 0), (1, 0)), ((0, 1), (0, 1))])
        .unwrap();
    net.add_constraint(q2, q3, vec![((1, 1), (0, 1)), ((1, -1), (1, 1))])
        .unwrap();
    // The paper's S24 lists [(1 0), (0 1)], but (1 0) is not in M2 (a typo in
    // the published example); (1 -1) keeps the published solution.
    net.add_constraint(q2, q4, vec![((1, -1), (0, 1)), ((1, 1), (1, 0))])
        .unwrap();
    net.add_constraint(q3, q4, vec![((0, 1), (1, 0))]).unwrap();
    (net, [q1, q2, q3, q4])
}

fn main() {
    let (network, vars) = paper_network();
    println!("The Section 3 example network:\n");
    println!(
        "  {} variables, {} constraints, domain size {}, naive search space {} assignments\n",
        network.variable_count(),
        network.constraint_count(),
        network.total_domain_size(),
        network.search_space_size()
    );

    for scheme in [
        Scheme::Base,
        Scheme::Enhanced,
        Scheme::ForwardChecking,
        Scheme::FullPropagation,
    ] {
        let result = SearchEngine::with_scheme(scheme).seed(7).solve(&network);
        let solution = result.solution.expect("the example network is satisfiable");
        let values: Vec<String> = vars
            .iter()
            .map(|&v| format!("{}={:?}", network.name(v), solution.value(v)))
            .collect();
        println!(
            "  {scheme:<16} -> {}   [{}]",
            values.join(", "),
            result.stats
        );
    }

    // Weighted extension: prefer the solution that gives Q1 the row-major
    // layout by weighting the pairs that contain it.
    println!("\nWeighted extension (future work in the paper): bias towards Q1=(1 0)");
    let (network, vars) = paper_network();
    let mut weighted = WeightedNetwork::new(network, 1.0);
    weighted
        .set_weight(vars[0], vars[3], &(1, 0), &(1, 0), 10.0)
        .expect("pair exists");
    let best = BranchAndBound::new().optimize(&weighted);
    let solution = best.solution.expect("satisfiable");
    println!(
        "  best total weight {:.1}: Q1={:?}, Q2={:?}, Q3={:?}, Q4={:?}",
        best.best_weight,
        solution.value(vars[0]),
        solution.value(vars[1]),
        solution.value(vars[2]),
        solution.value(vars[3]),
    );

    // A random planted-satisfiable network, to show the generator API.
    println!("\nRandom planted-satisfiable network (20 variables):");
    let spec = mlo_csp::random::RandomNetworkSpec {
        variables: 20,
        domain_size: 5,
        density: 0.4,
        tightness: 0.4,
        seed: 11,
    };
    let (random_net, _) = mlo_csp::random::satisfiable_network(&spec);
    for scheme in [Scheme::Base, Scheme::Enhanced] {
        let result = SearchEngine::with_scheme(scheme).solve(&random_net);
        println!(
            "  {scheme:<10} satisfiable={} {}",
            result.is_satisfiable(),
            result.stats
        );
    }

    // The narrow search seam: the caller owns the RNG and the limits, so
    // one engine value serves many differently-budgeted runs and identical
    // RNG states replay identical searches (this is what `mlo-core`
    // strategies program against).
    println!("\nCaller-owned RNG and per-run limits (the mlo-core seam):");
    use mlo_csp::SearchLimits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let engine = SearchEngine::with_scheme(Scheme::Base);
    let mut rng_a = StdRng::seed_from_u64(99);
    let mut rng_b = StdRng::seed_from_u64(99);
    let a = engine.solve_with_rng(&random_net, &mut rng_a);
    let b = engine.solve_with_rng(&random_net, &mut rng_b);
    assert_eq!(a.stats, b.stats, "identical RNG states replay identically");
    println!("  replayed: {}", a.stats);
    let capped = engine.solve_with(
        &random_net,
        &mut StdRng::seed_from_u64(99),
        &SearchLimits::none().with_node_limit(10),
    );
    println!(
        "  capped at 10 nodes: satisfiable={} hit_node_limit={}",
        capped.is_satisfiable(),
        capped.hit_node_limit
    );
}
