//! Domain scenario 2: bringing your own kernel to the optimizer.
//!
//! Shows the full public API surface a user of the library touches when
//! optimizing their own code: building the IR with `ProgramBuilder`,
//! inspecting dependences and legal loop orders, examining the derived
//! constraint network, solving it, and applying the resulting layouts as
//! concrete address maps.
//!
//! The kernel is a small stencil + transposition pair of nests that cannot
//! be served by a single canonical layout without restructuring.
//!
//! ```text
//! cargo run --example custom_kernel
//! ```

use constraint_layout::prelude::*;
use mlo_cachesim::TraceGenerator;
use mlo_ir::DependenceAnalysis;
use mlo_layout::AddressMap;
use mlo_linalg::IntVec;

fn main() {
    // A 2-nest kernel over three arrays:
    //   nest "smooth":   B[i][j]   = A[i][j] + A[i][j-1]
    //   nest "transpose":C[i][j]   = B[j][i]
    let n = 96;
    let mut builder = ProgramBuilder::new("custom");
    let a = builder.array("A", vec![n, n], 4);
    let b = builder.array("B", vec![n, n], 4);
    let c = builder.array("C", vec![n, n], 4);
    builder.nest("smooth", vec![("i", 0, n), ("j", 1, n)], |nest| {
        nest.read(
            a,
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
        );
        nest.read(
            a,
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .offset(1, -1)
                .build(),
        );
        nest.write(
            b,
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
        );
    });
    builder.nest("transpose", vec![("i", 0, n), ("j", 0, n)], |nest| {
        nest.read(
            b,
            AccessBuilder::new(2, 2)
                .row(0, [0, 1])
                .row(1, [1, 0])
                .build(),
        );
        nest.write(
            c,
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
        );
    });
    let program = builder.build();

    println!("== Dependences and legal restructurings ==");
    for nest in program.nests() {
        let deps = DependenceAnalysis::of_nest(nest);
        let legal = mlo_ir::legal_permutations(nest);
        println!(
            "  nest {:<10} {} dependences, {} legal loop orders",
            nest.name(),
            deps.dependences().len(),
            legal.len()
        );
    }

    println!("\n== Derived constraint network ==");
    let session = Engine::new().session();
    let request = OptimizeRequest::strategy("enhanced");
    let prepared = session.prepared(&program, &request.candidates);
    for constraint in prepared.network(&program).network().constraints() {
        println!("  {constraint}");
    }

    let outcome = session
        .optimize(&program, &request)
        .expect("the kernel's network is satisfiable");
    println!("\n== Chosen layouts ==");
    for array in program.arrays() {
        println!(
            "  {} -> {}",
            array.name(),
            outcome.assignment.layout_of(array.id()).expect("complete")
        );
    }

    println!("\n== Concrete address maps ==");
    for array in program.arrays() {
        let layout = outcome.assignment.layout_of(array.id()).expect("complete");
        let map = AddressMap::new(array, layout).expect("layouts linearize");
        let first = map.element_offset(&IntVec::from(vec![0, 0]));
        let along_row = map.element_offset(&IntVec::from(vec![0, 1]));
        let along_col = map.element_offset(&IntVec::from(vec![1, 0]));
        println!(
            "  {:<2} spans {:>6} elements; offset(0,0)={first}, offset(0,1)={along_row}, offset(1,0)={along_col}",
            array.name(),
            map.span_elements()
        );
    }

    println!("\n== Cache impact ==");
    let generator = TraceGenerator::with_defaults();
    let plan = generator
        .plan_memory(&program, &outcome.assignment)
        .expect("plan memory");
    println!("  planned data segment: {} bytes", plan.total_bytes());
    let simulator = Simulator::new(MachineConfig::date05());
    let baseline = simulator
        .clone()
        .without_restructuring()
        .simulate(&program, &LayoutAssignment::all_row_major(&program))
        .expect("baseline simulates");
    let optimized = simulator
        .simulate(&program, &outcome.assignment)
        .expect("optimized simulates");
    println!(
        "  row-major baseline: {} cycles ({:.1}% L1 misses)",
        baseline.total_cycles,
        baseline.l1_data.miss_rate() * 100.0
    );
    println!(
        "  optimized layouts : {} cycles ({:.1}% L1 misses, {:.1}% faster)",
        optimized.total_cycles,
        optimized.l1_data.miss_rate() * 100.0,
        optimized.improvement_over(&baseline)
    );
}
